"""Frequency allocation subroutine — Algorithm 3 of the paper.

Given a finished qubit layout and connection design, assign each qubit a
pre-fabrication frequency inside the allowed band (5.00-5.34 GHz) so that
the Monte Carlo yield of the whole chip is maximized.

The algorithm exploits two observations the paper makes: (1) qubits at
the geometric centre of the layout have the most connections and are the
most collision-prone, and (2) collisions are local — a qubit can only
collide with qubits at distance one or two in the coupling graph.  It
therefore fixes the centre qubit to the middle of the band and then walks
the coupling graph breadth-first, assigning each newly reached qubit the
candidate frequency that maximizes the simulated yield of its *local
region* (the already-assigned qubits it can collide with).

Two structural layers keep the search fast:

* **Incidence maps** — the global pair/triple lists are indexed by member
  qubit once per architecture, and every connection carries an
  incrementally maintained count of its still-unassigned members, so each
  local region is assembled in O(degree^2) instead of re-filtering the
  whole chip's connection lists per (qubit, pass).
* **One CRN noise tensor per qubit** — the common-random-numbers noise
  used to compare a qubit's candidates is drawn once (from the same
  per-qubit seed as always) and reused by every scoring of that qubit in
  the same allocation: refinement sweeps and pruned re-ranks never redraw.

**Candidate tie-break.**  Monte Carlo yields are integer success counts
over ``local_trials``, so exact ties between candidates are common
(typically several candidates survive every trial).  Candidates whose
yield is within ``1e-12`` of the best are tied; among them the allocator
picks the one closest to the middle of the allowed band, measured in
candidate-grid steps, and the *lower* frequency when two are equally
close.  Centre preference keeps the most slack on both sides for the
qubits assigned later; the rule is deterministic and documented here
instead of silently taking the lowest-frequency tied candidate.

**Allocation strategies.**  The search order and candidate filtering are
pluggable through :class:`AllocationStrategy`:

* ``bfs-greedy`` (default) — the paper's Algorithm 3 exactly: centre
  qubit mid-band, breadth-first greedy over the full candidate grid.
* ``coordinate-descent`` — BFS greedy followed by full-assignment
  refinement sweeps (the global-optimization extension suggested by the
  paper's Discussion; also selected implicitly by
  ``refinement_passes > 0``).
* ``analytic-guided`` — BFS order, but each qubit's candidate grid is
  first pruned with the closed-form pair-collision model of
  :mod:`repro.collision.analytic`; only the analytically most promising
  candidates are Monte Carlo ranked.  Faster, not bit-identical to the
  paper-exact search.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple, Union

import numpy as np

from repro.collision.conditions import (
    ANHARMONICITY_GHZ,
    CollisionThresholds,
    DEFAULT_THRESHOLDS,
)
from repro.collision.yield_simulator import YieldSimulator
from repro.hardware.architecture import Architecture
from repro.hardware.frequency import (
    DEFAULT_SIGMA_GHZ,
    candidate_frequencies,
    middle_frequency,
)
from repro.runtime.metrics import global_metrics
from repro.utils.rng import seed_for

_metrics = global_metrics()

#: Two candidate yields within this tolerance count as tied.  Monte Carlo
#: yields are multiples of ``1/local_trials``, so this is equivalent to
#: exact equality of success counts for any realistic trial count.
TIE_TOLERANCE = 1e-12

#: Process-wide count of :meth:`FrequencyAllocator.allocate` invocations.
#: Instrumentation for the warm-session proofs (tests and
#: ``benchmarks/bench_design_cache.py``): a run served entirely from a
#: persisted :class:`~repro.design.engine.DesignCache` must leave this
#: counter untouched — zero Algorithm 3 Monte Carlo searches.
_ALLOCATION_CALLS = 0


def allocation_call_count() -> int:
    """How many Algorithm 3 searches ran in this process (see above)."""
    return _ALLOCATION_CALLS


def reset_allocation_call_count() -> int:
    """Zero the process-wide Algorithm 3 counter; returns the previous value."""
    global _ALLOCATION_CALLS
    previous = _ALLOCATION_CALLS
    _ALLOCATION_CALLS = 0
    return previous


#: Process-wide cache of per-qubit CRN fabrication-noise tensors, keyed by
#: everything that determines a draw: (base seed, sigma, trials, qubit,
#: region size).  The tensors are pure functions of the key — a cold
#: sweep re-derives byte-identical draws for every architecture sharing
#: an allocator configuration, so serving them from one draw per key
#: removes a measurable slice of Algorithm 3's cold path without
#: touching any result.  Entries are read-only; a bounded FIFO keeps
#: pathological sweeps from growing the cache without limit.
_NOISE_TENSORS: Dict[Tuple, np.ndarray] = {}
_NOISE_TENSOR_LIMIT = 256

#: Process-wide memo of local-region ranking winners.  A ranking is a
#: pure function of its full content key — the scanned qubit (it seeds
#: the CRN noise), the local connections, the assigned frequencies of
#: the region, the candidate subset, and every allocator knob the local
#: simulation reads — so serving a repeat from the memo is bit-identical
#: to recomputing it.  Bus-count series and random-bus seed clouds
#: re-rank mostly identical local regions (roughly 40-60% of a cold
#: evaluation grid's rankings are exact repeats), which makes this the
#: largest single win on the cold Algorithm 3 path.  Values are a single
#: float each; a bounded FIFO keeps unbounded exploratory sessions in
#: check.
_RANKING_MEMO: Dict[Tuple, float] = {}
_RANKING_MEMO_LIMIT = 16384


def _bounded_put(cache: Dict, limit: int, key: Tuple, value) -> None:
    """Insert into a process-wide cache, evicting oldest entries first."""
    while len(cache) >= limit:
        cache.pop(next(iter(cache)))
    cache[key] = value


def reset_shared_caches() -> None:
    """Clear the process-wide noise-tensor and ranking-winner caches.

    Both caches hold pure functions of their content keys, so clearing
    them never changes any result — it only makes the next rankings pay
    the cold-path cost again.  Benchmarks use this to simulate a fresh
    process ("a true cold session"), and tests use it to force both
    sides of an identity comparison to actually compute.
    """
    _NOISE_TENSORS.clear()
    _RANKING_MEMO.clear()


def _shared_noise(key: Tuple, sigma_ghz: float, trials: int, qubit: int,
                  region_size: int) -> np.ndarray:
    noise = _NOISE_TENSORS.get(key)
    if noise is None:
        rng = np.random.default_rng(seed_for("freq-alloc", key[0], qubit))
        noise = rng.normal(0.0, sigma_ghz, size=(trials, region_size))
        noise.setflags(write=False)
        _bounded_put(_NOISE_TENSORS, _NOISE_TENSOR_LIMIT, key, noise)
    return noise


class _AllocationContext:
    """Per-architecture state shared by every allocation strategy.

    Built once per :meth:`FrequencyAllocator.allocate` call: the coupling
    structure (adjacency, collision pairs/triples), the per-qubit
    incidence maps into those lists, the candidate grid with its
    mid-band tie-break distances, and the per-qubit CRN noise cache.
    """

    def __init__(self, allocator: "FrequencyAllocator", architecture: Architecture) -> None:
        self.allocator = allocator
        self.architecture = architecture
        self.qubits: List[int] = architecture.qubits
        self.center: int = architecture.lattice.central_qubit()

        edges = architecture.coupling_edges()
        adjacency: Dict[int, Set[int]] = {q: set() for q in self.qubits}
        for a, b in edges:
            adjacency[a].add(b)
            adjacency[b].add(a)
        self.neighbors: Dict[int, List[int]] = {
            q: sorted(adjacency[q]) for q in self.qubits
        }

        # Collision connections, in the same global order the architecture
        # reports them (pairs = coupling edges; triples enumerated per
        # centre qubit over its sorted neighbour pairs).
        self.pairs: List[Tuple[int, int]] = edges
        triples: List[Tuple[int, int, int]] = []
        for j in self.qubits:
            around = self.neighbors[j]
            for idx_a in range(len(around)):
                for idx_b in range(idx_a + 1, len(around)):
                    triples.append((j, around[idx_a], around[idx_b]))
        self.triples = triples

        # Conflict sets for the batched-ranking waves: two qubits conflict
        # when some collision connection contains both — they are adjacent
        # (a pair, or centre-spectator of a triple) or share a common
        # neighbour (the two spectators of a triple).  Non-conflicting
        # qubits never appear in each other's local regions, so a wave of
        # pairwise non-conflicting qubits can be ranked against one shared
        # assignment state with bit-identical winners.
        self.conflicts: Dict[int, Set[int]] = {
            q: set(adjacency[q]) for q in self.qubits
        }
        for j in self.qubits:
            around = self.neighbors[j]
            for idx_a in range(len(around)):
                for idx_b in range(idx_a + 1, len(around)):
                    self.conflicts[around[idx_a]].add(around[idx_b])
                    self.conflicts[around[idx_b]].add(around[idx_a])

        # Incidence maps: connection indices by member qubit, ascending —
        # filtering a qubit's incidence list preserves the relative order
        # of the global list, exactly like filtering the global list did.
        self._pair_incidence: Dict[int, List[int]] = {q: [] for q in self.qubits}
        for index, (a, b) in enumerate(self.pairs):
            self._pair_incidence[a].append(index)
            self._pair_incidence[b].append(index)
        self._triple_incidence: Dict[int, List[int]] = {q: [] for q in self.qubits}
        for index, (j, i, k) in enumerate(self.triples):
            self._triple_incidence[j].append(index)
            self._triple_incidence[i].append(index)
            self._triple_incidence[k].append(index)

        # Incrementally maintained unassigned-member counts per connection.
        self._pair_unassigned = [2] * len(self.pairs)
        self._triple_unassigned = [3] * len(self.triples)
        self._assigned: Set[int] = set()

        self.candidates: np.ndarray = candidate_frequencies(allocator.frequency_step_ghz)
        mid = middle_frequency()
        # Tie-break distances in whole candidate-grid steps: float |cand -
        # mid| would order exactly mid-symmetric candidates by rounding
        # noise instead of by the documented lower-frequency preference.
        self._mid_distance = np.abs(
            np.rint((self.candidates - mid) / allocator.frequency_step_ghz)
        ).astype(np.int64)

        self._simulator = YieldSimulator(
            trials=allocator.local_trials,
            sigma_ghz=allocator.sigma_ghz,
            delta_ghz=allocator.delta_ghz,
            thresholds=allocator.thresholds,
        )
        self.scorer = _LocalRegionScorer(self)

    # -- assignment bookkeeping ------------------------------------------------

    def mark_assigned(self, qubit: int) -> None:
        """Record ``qubit`` as assigned; decrement its connections' counters."""
        if qubit in self._assigned:
            return
        self._assigned.add(qubit)
        for index in self._pair_incidence[qubit]:
            self._pair_unassigned[index] -= 1
        for index in self._triple_incidence[qubit]:
            self._triple_unassigned[index] -= 1

    def traversal_order(self) -> List[int]:
        """Breadth-first order over the coupling graph from the centre qubit.

        Qubits unreachable from the centre (possible only for degenerate
        layouts) are appended afterwards in index order so every qubit
        gets a frequency.
        """
        order: List[int] = []
        visited: Set[int] = {self.center}
        queue = deque([self.center])
        while queue:
            current = queue.popleft()
            order.append(current)
            for neighbor in self.neighbors[current]:
                if neighbor not in visited:
                    visited.add(neighbor)
                    queue.append(neighbor)
        for qubit in self.qubits:
            if qubit not in visited:
                order.append(qubit)
        return order

    # -- local-region scoring --------------------------------------------------

    def local_connections(
        self, qubit: int
    ) -> Tuple[List[Tuple[int, int]], List[Tuple[int, int, int]]]:
        """Connections through which ``qubit`` can collide with assigned qubits.

        A connection qualifies when every member other than ``qubit``
        already has a frequency — during the BFS walk ``qubit`` itself is
        the one unassigned member; during refinement sweeps (``qubit``
        re-optimized against the complete assignment) no member is.
        """
        want = 0 if qubit in self._assigned else 1
        local_pairs = [
            self.pairs[index]
            for index in self._pair_incidence[qubit]
            if self._pair_unassigned[index] == want
        ]
        local_triples = [
            self.triples[index]
            for index in self._triple_incidence[qubit]
            if self._triple_unassigned[index] == want
        ]
        return local_pairs, local_triples

    def noise_for(self, qubit: int, region_size: int) -> np.ndarray:
        """The qubit's CRN fabrication-noise tensor (drawn once per key).

        Seeded exactly as the pre-refactor allocator seeded its per-qubit
        simulator, so a fresh draw and a cached reuse are bit-identical.
        The region size participates in the key because numpy fills
        ``(trials, size)`` tensors in C order: the same seed yields
        different column contents for different sizes.  Tensors are
        served from a process-wide read-only cache: a sweep's many
        architectures re-request identical draws for every qubit they
        share with an earlier allocation.
        """
        allocator = self.allocator
        if not allocator.shared_caches:
            rng = np.random.default_rng(seed_for("freq-alloc", allocator.seed, qubit))
            return rng.normal(
                0.0, allocator.sigma_ghz,
                size=(allocator.local_trials, region_size),
            )
        key = (
            allocator.seed, allocator.sigma_ghz, allocator.local_trials,
            qubit, region_size,
        )
        return _shared_noise(
            key, allocator.sigma_ghz, allocator.local_trials, qubit, region_size
        )

    def best_frequency(
        self,
        qubit: int,
        frequencies: Dict[int, float],
        candidate_indices: Optional[np.ndarray] = None,
    ) -> float:
        """The candidate maximizing the qubit's local-region Monte Carlo yield.

        Delegates to this context's :class:`_LocalRegionScorer` (kept as a
        method so strategies read naturally).
        """
        return self.scorer.best_frequency_for(qubit, frequencies, candidate_indices)


class _LocalRegionScorer:
    """Ranks one qubit's candidate frequencies on its local collision region.

    Owns the candidate-ranking half of Algorithm 3's inner loop: assemble
    the scanned qubit's local region (the assigned qubits it can collide
    with), score every candidate's joint failed-trial count against the
    qubit's CRN noise tensor, and apply the documented mid-band
    tie-break.  Two ranking paths produce bit-identical winners:

    * **screened** (the default) — the exact interval-count bounds of
      :mod:`repro.collision.screening` decide most candidates outright
      and provably discard candidates that cannot win; the joint Monte
      Carlo kernel runs only on the surviving rows
      (:meth:`~repro.collision.yield_simulator.YieldSimulator.screened_failure_counts`).
      Winner preservation is exact: every candidate achieving the
      minimum failure count is verified with its exact joint count, so
      the tie set — and therefore the tie-break — never changes.
    * **direct** — the joint kernel scores every candidate
      (``screening=False``, or threshold geometries the interval screen
      does not support).
    """

    def __init__(self, context: "_AllocationContext") -> None:
        self._context = context
        allocator = context.allocator
        self.screening = (
            allocator.screening and context._simulator.screening_enabled()
        )
        self.memoized = allocator.shared_caches
        # Everything the local simulation reads besides the per-call
        # region content; part of every ranking-memo key.
        self._memo_prefix = (
            allocator.seed, allocator.sigma_ghz, allocator.local_trials,
            allocator.frequency_step_ghz, allocator.delta_ghz,
            allocator.thresholds,
        )

    def best_frequency_for(
        self,
        qubit: int,
        frequencies: Dict[int, float],
        candidate_indices: Optional[np.ndarray] = None,
    ) -> float:
        """The winning candidate frequency for ``qubit``.

        Args:
            qubit: The qubit to place in the band.
            frequencies: Current (partial or complete) assignment; the
                qubit's own entry, if present, is ignored.
            candidate_indices: Optional index subset of the candidate grid
                to rank (used by pruning strategies); the documented
                mid-band tie-break applies within the subset.
        """
        winner, request = self._resolve(qubit, frequencies, candidate_indices)
        if request is None:
            return winner
        return self._rank_one(request)

    def best_frequencies_for(
        self,
        qubits: List[int],
        frequencies: Dict[int, float],
    ) -> Dict[int, float]:
        """Winning frequencies for a wave of mutually independent qubits.

        The cross-qubit batched ranking path: every qubit of the wave is
        ranked against the *same* assignment state, and all rankings the
        memo cannot answer screen through one fused merge-kernel call
        (:meth:`~repro.collision.yield_simulator.YieldSimulator.screened_failure_counts_batch`).
        Winners are bit-identical to ranking the wave one qubit at a
        time; the caller guarantees independence (no two wave members
        share a collision connection, see
        :attr:`_AllocationContext.conflicts`), which makes the shared
        state legitimate.
        """
        winners: Dict[int, float] = {}
        pending: List[_RankingRequest] = []
        for qubit in qubits:
            winner, request = self._resolve(qubit, frequencies, None)
            if request is None:
                winners[qubit] = winner
            else:
                pending.append(request)
        if not pending:
            return winners
        if self.screening:
            screened_batch = self._context._simulator.screened_failure_counts_batch(
                self._context.candidates,
                [
                    (request.qubit_index, request.base, request.pair_idx,
                     request.triple_idx, request.noise)
                    for request in pending
                ],
            )
            for request, screened in zip(pending, screened_batch):
                winners[request.qubit] = self._finish(
                    request, screened.counts, screened.known
                )
        else:
            for request in pending:
                winners[request.qubit] = self._rank_one(request)
        return winners

    def _resolve(
        self,
        qubit: int,
        frequencies: Dict[int, float],
        candidate_indices: Optional[np.ndarray],
    ) -> Tuple[Optional[float], Optional["_RankingRequest"]]:
        """Answer a ranking from structure/memo, or assemble its region.

        Returns ``(winner, None)`` when no simulation is needed (isolated
        qubit, or ranking-memo hit) and ``(None, request)`` with the
        assembled region otherwise.
        """
        context = self._context
        local_pairs, local_triples = context.local_connections(qubit)
        if not local_pairs and not local_triples:
            # Isolated qubit (no assigned neighbour yet): the middle of the
            # band is as good as any other choice.
            return middle_frequency(), None

        memo_key = None
        if self.memoized:
            members: Set[int] = set()
            for pair in local_pairs:
                members.update(pair)
            for triple in local_triples:
                members.update(triple)
            members.discard(qubit)
            memo_key = (
                self._memo_prefix,
                qubit,
                tuple(local_pairs),
                tuple(local_triples),
                tuple(frequencies[member] for member in sorted(members)),
                None if candidate_indices is None else tuple(candidate_indices),
            )
            winner = _RANKING_MEMO.get(memo_key)
            if winner is not None:
                return winner, None

        region: Set[int] = {qubit}
        for a, b in local_pairs:
            region.update((a, b))
        for j, i, k in local_triples:
            region.update((j, i, k))
        region_order = sorted(region)
        index_of = {q: i for i, q in enumerate(region_order)}
        qubit_index = index_of[qubit]
        base = np.array([frequencies.get(q, 0.0) if q != qubit else 0.0
                         for q in region_order])
        pair_idx = np.array(
            [(index_of[a], index_of[b]) for a, b in local_pairs], dtype=int
        ).reshape(-1, 2)
        triple_idx = np.array(
            [(index_of[j], index_of[i], index_of[k]) for j, i, k in local_triples],
            dtype=int,
        ).reshape(-1, 3)

        candidates = context.candidates
        mid_distance = context._mid_distance
        if candidate_indices is not None:
            candidates = candidates[candidate_indices]
            mid_distance = mid_distance[candidate_indices]
        noise = context.noise_for(qubit, len(region_order))
        return None, _RankingRequest(
            qubit, memo_key, qubit_index, base, pair_idx, triple_idx,
            noise, candidates, mid_distance,
        )

    def _rank_one(self, request: "_RankingRequest") -> float:
        """Rank one assembled region through the single-qubit path."""
        simulator = self._context._simulator
        if self.screening:
            screened = simulator.screened_failure_counts(
                request.candidates, request.qubit_index, request.base,
                request.pair_idx, request.triple_idx, noise=request.noise,
            )
            return self._finish(request, screened.counts, screened.known)
        designed_batch = np.repeat(
            request.base[None, :], len(request.candidates), axis=0
        )
        designed_batch[:, request.qubit_index] = request.candidates
        failures = simulator.failure_counts(
            designed_batch, request.pair_idx, request.triple_idx,
            noise=request.noise,
        )
        return self._finish(request, failures, None)

    def _finish(
        self,
        request: "_RankingRequest",
        failures: np.ndarray,
        known: Optional[np.ndarray],
    ) -> float:
        """Apply the documented tie-break and memoize the winner."""
        # Failure counts are integers, so the 1e-12 yield tolerance reduces
        # to exact count equality; the tie set is ranked by mid-band
        # distance, lower frequency first among equally distant candidates
        # (tie indices ascend and argmin returns the first minimum).
        if known is not None:
            # Every minimum-count candidate is known exactly, so the tie
            # set over known counts equals the unscreened tie set.
            tie_set = np.flatnonzero(known & (failures == failures[known].min()))
        else:
            tie_set = np.flatnonzero(failures == failures.min())
        winner = float(
            request.candidates[tie_set[np.argmin(request.mid_distance[tie_set])]]
        )
        if request.memo_key is not None:
            _bounded_put(_RANKING_MEMO, _RANKING_MEMO_LIMIT, request.memo_key, winner)
        return winner


class _RankingRequest:
    """One assembled local-region ranking awaiting simulation."""

    __slots__ = (
        "qubit", "memo_key", "qubit_index", "base", "pair_idx",
        "triple_idx", "noise", "candidates", "mid_distance",
    )

    def __init__(self, qubit, memo_key, qubit_index, base, pair_idx,
                 triple_idx, noise, candidates, mid_distance):
        self.qubit = qubit
        self.memo_key = memo_key
        self.qubit_index = qubit_index
        self.base = base
        self.pair_idx = pair_idx
        self.triple_idx = triple_idx
        self.noise = noise
        self.candidates = candidates
        self.mid_distance = mid_distance


class AllocationStrategy:
    """Base class of pluggable Algorithm 3 search strategies.

    A strategy receives the per-architecture :class:`_AllocationContext`
    and returns the complete frequency assignment.  Implementations must
    be deterministic functions of the context (the allocator's seed enters
    through the context's noise cache).
    """

    name: str = ""

    def assign(self, context: _AllocationContext) -> Dict[int, float]:
        raise NotImplementedError

    # -- shared skeleton -------------------------------------------------------

    def _bfs_assign(
        self,
        context: _AllocationContext,
        candidate_indices_for=None,
    ) -> Tuple[Dict[int, float], List[int]]:
        """The paper's centre-out BFS greedy walk; returns (assignment, order).

        With ``batched_rankings`` on (and no per-qubit candidate
        filtering, which may read intermediate assignments), the walk
        processes the BFS order in waves (:meth:`_next_wave`): each wave
        is ranked through one fused batched kernel call and then assigned
        wholesale.  Winners are bit-identical to the sequential walk —
        see :meth:`_next_wave` for why.
        """
        frequencies: Dict[int, float] = {context.center: middle_frequency()}
        context.mark_assigned(context.center)
        order = context.traversal_order()
        if candidate_indices_for is None and context.allocator.batched_rankings:
            remaining = [qubit for qubit in order if qubit not in frequencies]
            while remaining:
                wave, remaining = self._next_wave(context, remaining)
                winners = context.scorer.best_frequencies_for(wave, frequencies)
                for qubit in wave:
                    frequencies[qubit] = winners[qubit]
                    context.mark_assigned(qubit)
            return frequencies, order
        for qubit in order:
            if qubit in frequencies:
                continue
            subset = candidate_indices_for(context, qubit, frequencies) \
                if candidate_indices_for is not None else None
            frequencies[qubit] = context.best_frequency(
                qubit, frequencies, candidate_indices=subset
            )
            context.mark_assigned(qubit)
        return frequencies, order

    @staticmethod
    def _next_wave(
        context: _AllocationContext, remaining: List[int]
    ) -> Tuple[List[int], List[int]]:
        """Split a ranking queue into ``(wave, deferred)`` for batching.

        Greedy independent-set in queue order: a qubit joins the wave
        only when it conflicts (shares a collision connection, see
        :attr:`_AllocationContext.conflicts`) with *neither* an earlier
        wave member *nor* an earlier deferred qubit.  That invariant
        makes the batched schedule bit-identical to the sequential one:
        for any qubit ``q``, every conflicting qubit ahead of ``q`` in
        the queue lands in a strictly earlier wave (``q`` would have
        been deferred otherwise), and every conflicting qubit behind
        ``q`` lands in a strictly later wave — so at ``q``'s ranking the
        assigned-and-updated state of its local region is exactly the
        sequential one, and wave members never read each other's
        results at all.
        """
        wave: List[int] = []
        wave_set: Set[int] = set()
        deferred: List[int] = []
        deferred_set: Set[int] = set()
        for qubit in remaining:
            conflicts = context.conflicts[qubit]
            if conflicts.isdisjoint(wave_set) and conflicts.isdisjoint(deferred_set):
                wave.append(qubit)
                wave_set.add(qubit)
            else:
                deferred.append(qubit)
                deferred_set.add(qubit)
        return wave, deferred


class BfsGreedyStrategy(AllocationStrategy):
    """The paper-exact Algorithm 3: centre-out BFS over the full grid."""

    name = "bfs-greedy"

    def assign(self, context: _AllocationContext) -> Dict[int, float]:
        frequencies, _order = self._bfs_assign(context)
        return frequencies


class CoordinateDescentStrategy(AllocationStrategy):
    """BFS greedy plus coordinate-descent refinement sweeps.

    Each sweep revisits every qubit in BFS order (the centre included —
    its initial mid-band choice is only a heuristic starting point) and
    re-optimizes its frequency against the now-complete assignment of its
    local region.  The assignment is updated in place: a re-optimized
    qubit keeps its current frequency in every later qubit's context, and
    no per-qubit copy of the full assignment is ever made.
    """

    name = "coordinate-descent"

    def assign(self, context: _AllocationContext) -> Dict[int, float]:
        frequencies, order = self._bfs_assign(context)
        passes = max(1, context.allocator.refinement_passes)
        batched = context.allocator.batched_rankings
        for _sweep in range(passes):
            if batched:
                # Same wave discipline as the BFS walk: non-conflicting
                # qubits never read each other's refined frequencies, so
                # ranking a wave against the pre-wave assignment and
                # applying its updates together is bit-identical to the
                # in-place sequential sweep.
                remaining = list(order)
                while remaining:
                    wave, remaining = self._next_wave(context, remaining)
                    winners = context.scorer.best_frequencies_for(
                        wave, frequencies
                    )
                    for qubit in wave:
                        frequencies[qubit] = winners[qubit]
            else:
                for qubit in order:
                    frequencies[qubit] = context.best_frequency(qubit, frequencies)
        return frequencies


class AnalyticGuidedStrategy(AllocationStrategy):
    """BFS greedy over an analytically pruned candidate grid.

    Before Monte Carlo ranking a qubit's candidates, the closed-form
    pair-collision model of :mod:`repro.collision.analytic` scores every
    candidate against the qubit's already-assigned neighbours; only the
    ``prune_keep`` candidates with the smallest summed collision
    probability survive.  Triple conditions are left to the Monte Carlo
    stage — the pruning only needs to discard candidates sitting on an
    obvious pair-collision centre.  Faster than the full-grid search and
    typically within Monte Carlo noise of its yields, but **not**
    bit-identical to the paper-exact strategy.
    """

    name = "analytic-guided"

    #: Candidates surviving the analytic pruning, per qubit.
    prune_keep = 12

    def assign(self, context: _AllocationContext) -> Dict[int, float]:
        frequencies, _order = self._bfs_assign(context, self._pruned_candidates)
        return frequencies

    def _pruned_candidates(
        self,
        context: _AllocationContext,
        qubit: int,
        frequencies: Dict[int, float],
    ) -> Optional[np.ndarray]:
        from repro.collision.analytic import pair_collision_probability

        local_pairs, _local_triples = context.local_connections(qubit)
        neighbor_freqs = [
            frequencies[b if a == qubit else a]
            for a, b in local_pairs
            if qubit in (a, b)
        ]
        candidates = context.candidates
        if not neighbor_freqs or len(candidates) <= self.prune_keep:
            return None
        allocator = context.allocator
        badness = np.zeros(len(candidates))
        for other in neighbor_freqs:
            badness += np.array([
                pair_collision_probability(
                    float(candidate), other,
                    allocator.sigma_ghz, allocator.delta_ghz, allocator.thresholds,
                )
                for candidate in candidates
            ])
        # Stable sort: equal badness resolves to the lower candidate index,
        # keeping the pruned subset deterministic.
        keep = np.sort(np.argsort(badness, kind="stable")[: self.prune_keep])
        return keep


#: Registry of the built-in strategies, by name.
ALLOCATION_STRATEGIES: Dict[str, AllocationStrategy] = {
    strategy.name: strategy
    for strategy in (
        BfsGreedyStrategy(),
        CoordinateDescentStrategy(),
        AnalyticGuidedStrategy(),
    )
}


def resolve_strategy(
    strategy: Union[str, AllocationStrategy], refinement_passes: int = 0
) -> AllocationStrategy:
    """Resolve a strategy name (or instance) to an :class:`AllocationStrategy`.

    ``refinement_passes > 0`` upgrades the default ``bfs-greedy`` choice
    to ``coordinate-descent``, preserving the pre-strategy behaviour of
    the ``refinement_passes`` knob.
    """
    if isinstance(strategy, AllocationStrategy):
        return strategy
    name = str(strategy)
    if name == BfsGreedyStrategy.name and refinement_passes > 0:
        name = CoordinateDescentStrategy.name
    try:
        return ALLOCATION_STRATEGIES[name]
    except KeyError:
        known = ", ".join(sorted(ALLOCATION_STRATEGIES))
        raise ValueError(
            f"unknown allocation strategy {strategy!r} (known: {known})"
        ) from None


@dataclass
class FrequencyAllocator:
    """Configuration of the Algorithm 3 frequency search.

    Attributes:
        sigma_ghz: Fabrication noise standard deviation used in the local
            yield simulations.
        local_trials: Monte Carlo trials per (qubit, candidate frequency)
            evaluation.  The local regions are tiny (a handful of qubits),
            so a modest trial count already separates good candidates from
            bad ones; the final full-chip yield is always re-estimated with
            the full simulator.
        frequency_step_ghz: Spacing of the candidate frequency grid
            (0.01 GHz in the paper).
        delta_ghz: Qubit anharmonicity.
        thresholds: Collision thresholds.
        seed: Base seed; the noise used to compare candidates for a given
            qubit is common across candidates (common random numbers), so
            the argmax is not dominated by sampling noise.
        refinement_passes: Number of coordinate-descent sweeps run after
            the centre-out BFS assignment.  The default of 0 reproduces
            the paper's Algorithm 3 exactly; non-zero values select the
            ``coordinate-descent`` strategy.
        strategy: Allocation strategy name or instance (see
            :data:`ALLOCATION_STRATEGIES`).  ``bfs-greedy`` is the
            paper-exact default.
        screening: Whether candidate rankings use the exact
            interval-count screening engine
            (:mod:`repro.collision.screening`) to prune the candidate
            grid before the joint Monte Carlo kernel runs.  Screening is
            provably winner-preserving, so the allocation is
            bit-identical with it on or off — the flag exists as an
            escape hatch and for benchmarking the cold path.
        shared_caches: Whether rankings may be served from the
            process-wide content-keyed caches (CRN noise tensors and
            local-region ranking winners).  Both are pure functions of
            their keys, so results are bit-identical with the caches on
            or off; disabling them exists for benchmarking the
            uncached cold path.
        batched_rankings: Whether the BFS walk and refinement sweeps
            rank waves of mutually independent qubits through one fused
            batched kernel call instead of one call per qubit
            (:meth:`AllocationStrategy._next_wave`).  Wave members never
            share a collision connection, so winners are bit-identical
            with batching on or off; the flag exists for benchmarking
            and identity tests.
    """

    sigma_ghz: float = DEFAULT_SIGMA_GHZ
    local_trials: int = 2000
    frequency_step_ghz: float = 0.01
    delta_ghz: float = ANHARMONICITY_GHZ
    thresholds: CollisionThresholds = DEFAULT_THRESHOLDS
    seed: int = 2020
    refinement_passes: int = 0
    strategy: Union[str, AllocationStrategy] = BfsGreedyStrategy.name
    screening: bool = True
    shared_caches: bool = True
    batched_rankings: bool = True

    def allocate(self, architecture: Architecture) -> Dict[int, float]:
        """Assign a frequency to every qubit of ``architecture``.

        The input architecture's existing frequencies (if any) are ignored;
        only its layout and coupling graph are used, as in the paper where
        "the input of our algorithm is only the qubit location and
        connection generated from the previous two subroutines".
        """
        if not architecture.qubits:
            raise ValueError("architecture has no qubits")
        global _ALLOCATION_CALLS
        _ALLOCATION_CALLS += 1
        _metrics.increment("design/allocation_calls")
        context = _AllocationContext(self, architecture)
        strategy = resolve_strategy(self.strategy, self.refinement_passes)
        with _metrics.timer("design/allocate"):
            return strategy.assign(context)


def allocate_frequencies(
    architecture: Architecture,
    sigma_ghz: float = DEFAULT_SIGMA_GHZ,
    local_trials: int = 2000,
    seed: int = 2020,
    refinement_passes: int = 0,
    strategy: Union[str, AllocationStrategy] = BfsGreedyStrategy.name,
    screening: bool = True,
) -> Dict[int, float]:
    """One-call convenience wrapper around :class:`FrequencyAllocator`."""
    allocator = FrequencyAllocator(
        sigma_ghz=sigma_ghz,
        local_trials=local_trials,
        seed=seed,
        refinement_passes=refinement_passes,
        strategy=strategy,
        screening=screening,
    )
    return allocator.allocate(architecture)
