"""The architecture design flow (paper Section 4).

Three subroutines, each consuming the profiling results and the physical
constraints relevant to the hardware resource it designs:

* :mod:`repro.design.layout` — qubit placement on the 2D lattice
  (Algorithm 1);
* :mod:`repro.design.bus_selection` — selection of lattice squares for
  4-qubit buses under the adjacency prohibition (Algorithm 2), plus the
  random-selection baseline used by the ``eff-rd-bus`` configuration;
* :mod:`repro.design.frequency_allocation` — centre-outwards per-qubit
  frequency search maximizing locally simulated yield (Algorithm 3).

:class:`repro.design.flow.DesignFlow` wires the three together and
produces a series of architectures trading yield for performance by
varying the number of 4-qubit buses.
"""

from repro.design.layout import LayoutResult, design_layout
from repro.design.bus_selection import (
    BusSelectionResult,
    cross_coupling_weights,
    select_four_qubit_buses,
    select_random_buses,
)
from repro.design.frequency_allocation import (
    ALLOCATION_STRATEGIES,
    AllocationStrategy,
    FrequencyAllocator,
    allocate_frequencies,
    allocation_call_count,
    reset_allocation_call_count,
    reset_shared_caches,
    resolve_strategy,
)
from repro.design.engine import DesignCache, DesignEngine, StageCache
from repro.design.flow import (
    DesignFlow,
    DesignOptions,
    design_architecture,
    design_architecture_series,
)

__all__ = [
    "LayoutResult",
    "design_layout",
    "BusSelectionResult",
    "cross_coupling_weights",
    "select_four_qubit_buses",
    "select_random_buses",
    "ALLOCATION_STRATEGIES",
    "AllocationStrategy",
    "FrequencyAllocator",
    "allocate_frequencies",
    "allocation_call_count",
    "reset_allocation_call_count",
    "reset_shared_caches",
    "resolve_strategy",
    "DesignCache",
    "DesignEngine",
    "StageCache",
    "DesignFlow",
    "DesignOptions",
    "design_architecture",
    "design_architecture_series",
]
