"""The design engine: staged, digest-keyed memoization of the design flow.

The paper's design flow is a chain of four pure stages —

    profile  ->  layout (Alg 1)  ->  bus selection (Alg 2)  ->  frequency
                                                                allocation (Alg 3)

— and a Figure 10 evaluation runs that chain dozens of times per
benchmark with heavily overlapping inputs: every configuration of a
benchmark shares the profile and the layout, a bus-count series shares
one greedy (or seeded-random) selection sequence, and random-bus seeds
frequently agree on the selected squares.  The :class:`DesignEngine`
mirrors the :class:`~repro.mapping.engine.RoutingEngine` pattern: each
stage is memoized independently under a key derived from the *content*
of its inputs, so a stage re-runs only when its own inputs changed.

Stage keys:

* **profile** — the circuit's value identity (register size, name, gate
  count, content digest), with the exact gate tuple stored alongside the
  result to guard against digest collisions.
* **layout** — a SHA-256 digest of the profile content the layout reads
  (register size, strength matrix, degree list).  Algorithm 1 is a
  deterministic function of exactly those fields.
* **bus selection** — the layout digest plus the selection strategy (and
  seed, for random selection).  Both Algorithm 2's greedy and the seeded
  random baseline are *prefix-stable*: the squares selected under a
  budget of ``k`` buses are the first ``k`` squares selected under any
  larger budget, so one full-length selection per key serves every bus
  count of a series.
* **frequency allocation** — the architecture's collision structure
  (qubit set, coupling edges, centre qubit) plus the allocator
  configuration (sigma, trials, seed, refinement passes, strategy).
  Architectures that differ only in name — or in how they were produced —
  share one Algorithm 3 run.

All stages are transparent caches over pure deterministic functions:
results are bit-identical with or without hits, which keeps parallel
sweeps byte-identical for any worker count.
"""

from __future__ import annotations

import enum
import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro import persistence

from repro.circuit.circuit import QuantumCircuit
from repro.design.bus_selection import (
    BusSelectionResult,
    select_four_qubit_buses,
    select_random_buses,
)
from repro.design.frequency_allocation import FrequencyAllocator
from repro.design.layout import LayoutResult, design_layout
from repro.hardware.architecture import Architecture
from repro.hardware.frequency import DEFAULT_SIGMA_GHZ, five_frequency_scheme
from repro.profiling.profiler import CircuitProfile, profile_circuit
from repro.runtime.metrics import global_metrics

_metrics = global_metrics()

#: Default bound on memoized entries per stage.  Evaluation sweeps touch a
#: handful of benchmarks and a few dozen distinct architectures per
#: benchmark; the bound only exists so unbounded exploratory sessions
#: cannot grow layouts and frequency plans without limit.
DEFAULT_STAGE_ENTRIES = 256


class BusStrategy(enum.Enum):
    """How 4-qubit bus squares are chosen."""

    FILTERED_WEIGHT = "filtered_weight"
    RANDOM = "random"


class FrequencyStrategy(enum.Enum):
    """How qubit frequencies are designed."""

    OPTIMIZED = "optimized"
    FIVE_FREQUENCY = "five_frequency"


@dataclass
class DesignOptions:
    """Knobs of the design flow.

    Attributes:
        bus_strategy: Filtered-weight greedy (Algorithm 2) or random selection.
        frequency_strategy: Centre-out yield-driven search (Algorithm 3) or
            IBM's regular 5-frequency scheme.
        sigma_ghz: Fabrication precision assumed during frequency allocation.
        local_trials: Monte Carlo trials per candidate in Algorithm 3.
        random_bus_seed: Seed for the random bus selection baseline.
        frequency_seed: Seed for the frequency allocator's local simulations.
        frequency_refinement_passes: Coordinate-descent sweeps after the
            BFS frequency assignment.  The default of 0 reproduces the
            paper's Algorithm 3 exactly; non-zero values implement the
            global-optimization extension the paper's Discussion suggests.
        allocation_strategy: Algorithm 3 search strategy name (see
            :data:`~repro.design.frequency_allocation.ALLOCATION_STRATEGIES`).
        frequency_screening: Whether Algorithm 3 candidate rankings use
            the exact interval-count screening engine
            (:mod:`repro.collision.screening`).  Screening is provably
            winner-preserving — results are bit-identical with it on or
            off — so the flag never enters any cache key; it exists as
            an escape hatch and for benchmarking the cold path.
    """

    bus_strategy: BusStrategy = BusStrategy.FILTERED_WEIGHT
    frequency_strategy: FrequencyStrategy = FrequencyStrategy.OPTIMIZED
    sigma_ghz: float = DEFAULT_SIGMA_GHZ
    local_trials: int = 2000
    random_bus_seed: Optional[int] = None
    frequency_seed: int = 2020
    frequency_refinement_passes: int = 0
    allocation_strategy: str = "bfs-greedy"
    frequency_screening: bool = True


class StageCache:
    """A bounded, deterministic LRU memo for one design stage.

    The same shape as :class:`~repro.mapping.engine.RoutingCache`: keyed
    lookups count hits and misses, insertion evicts least-recently-used
    entries beyond ``max_entries``, and cached values are exactly what a
    fresh computation would produce.
    """

    def __init__(self, name: str, max_entries: Optional[int] = DEFAULT_STAGE_ENTRIES) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1 or None, got {max_entries}")
        self.name = name
        self.max_entries = max_entries
        self._entries: "OrderedDict[Tuple, object]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: Tuple):
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            _metrics.increment(f"design/{self.name}/misses")
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        _metrics.increment(f"design/{self.name}/hits")
        return entry

    def put(self, key: Tuple, value) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        if self.max_entries is not None:
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()

    def stats(self) -> Dict[str, int]:
        return {"entries": len(self._entries), "hits": self.hits, "misses": self.misses}


class DesignCache(StageCache):
    """The frequency-allocation stage cache, persistable across processes.

    Mirrors :class:`~repro.mapping.engine.RoutingCache`: the memoized
    Algorithm 3 frequency plans — by far the most expensive stage of the
    design flow — round-trip through a versioned, counts-only JSON file
    (a few floats per qubit; never simulators or noise tensors), so a
    second session, or every worker of a ``sweep --jobs N``, re-derives
    a warm evaluation grid's architectures without a single Monte Carlo
    call.

    Keys are *full content*, not digests — the architecture's qubit set,
    coupling edges and centre qubit plus the complete allocator
    configuration — so a loaded entry can never be served to a
    near-miss input; there is no collision guard to re-confirm.  Entries
    are exactly what a fresh :class:`FrequencyAllocator` run produces,
    so hits are bit-identical to recomputation and parallel sweeps stay
    byte-identical for any worker count, warm or cold.
    """

    #: Persisted-file envelope (see :mod:`repro.persistence`).
    FORMAT = "repro-design-cache"
    VERSION = 1

    def __init__(self, max_entries: Optional[int] = DEFAULT_STAGE_ENTRIES) -> None:
        super().__init__("frequency", max_entries)

    # -- persistence ----------------------------------------------------------

    def save(self, path: Union[str, Path]) -> int:
        """Persist the memoized frequency plans to a counts-only JSON file.

        The file is an image of the in-memory stage cache (at most
        ``max_entries`` plans); use :meth:`merge_save` to extend an
        existing file instead of replacing it.  The write is atomic
        (temp file + ``os.replace``), so concurrent readers never
        observe a torn file.  Returns the number of entries written.
        """
        return persistence.write_cache_file(
            path, self.FORMAT, self.VERSION, self._serialize_entries(),
            key_of=self._record_key, kind="design cache",
        )

    def _serialize_entries(self) -> list:
        """The in-memory frequency plans as persistable records."""
        return [
            {
                "key": persistence.listify(key),
                "frequencies": {str(qubit): value for qubit, value in plan.items()},
            }
            for key, plan in self._entries.items()
        ]

    @staticmethod
    def _record_key(record: dict) -> Tuple:
        """A serialized record's identity (file-level merge key)."""
        return persistence.tuplify(record["key"])

    def load(self, path: Union[str, Path], missing_ok: bool = False) -> int:
        """Merge a persisted cache file into this cache.

        Existing in-memory entries win over file entries under the same
        key.  Files with the wrong format marker or an unknown schema
        version are rejected with a clear error.  Returns the number of
        merged entries still resident afterwards — on a bounded cache, a
        file larger than ``max_entries`` merges only its tail, and the
        count reflects that rather than masking the eviction.
        ``missing_ok`` turns a nonexistent file into a no-op returning 0.
        """
        records = persistence.read_cache_entries(
            path, self.FORMAT, self.VERSION, missing_ok=missing_ok,
            kind="design cache",
        )
        if records is None:
            return 0

        def decode(record: dict) -> Tuple:
            plan = {
                int(qubit): float(value)
                for qubit, value in record["frequencies"].items()
            }
            return self._record_key(record), plan

        return persistence.merge_loaded(self, records, decode)

    def merge_save(self, path: Union[str, Path]) -> int:
        """Extend the persisted file with this cache's entries, concurrency-safe.

        A file-level union under a per-path lock: the file keeps every
        plan it already holds (this cache's entries win under equal
        keys) plus everything memoized here — it never shrinks to this
        cache's LRU bound, so a long sweep's cache file stays complete
        even when its grid outgrows ``max_entries``, and concurrent
        workers sharing one cache path cannot drop each other's results.
        Returns the number of entries the rewritten file holds.
        """
        return persistence.union_merge_save(
            path, self.FORMAT, self.VERSION, self._serialize_entries(),
            self._record_key, kind="design cache",
        )


def circuit_design_key(circuit: QuantumCircuit) -> Tuple:
    """Value identity of a circuit as far as profiling is concerned.

    The name participates because it is recorded in the profile (and
    through it in mapping results); the gate sequence enters via the
    circuit's cached content digest.  Digest collisions are guarded by
    the exact gate tuple stored with each profile entry.
    """
    return (circuit.num_qubits, circuit.name, len(circuit), circuit.content_hash())


def profile_layout_digest(profile: CircuitProfile) -> str:
    """SHA-256 digest of the profile content the layout stage consumes.

    Algorithm 1 reads the register size, the coupling strength matrix and
    the degree list (the coupling graph is the strength matrix's non-zero
    structure), so profiles agreeing on those fields produce identical
    layouts — even across differently named circuits.
    """
    digest = hashlib.sha256()
    digest.update(str(profile.num_qubits).encode())
    digest.update(profile.strength_matrix.tobytes())
    digest.update(str(tuple(profile.degree_list)).encode())
    return digest.hexdigest()


def architecture_collision_key(architecture: Architecture) -> Tuple:
    """Value identity of an architecture as far as Algorithm 3 is concerned.

    Frequency allocation reads the qubit set, the coupling graph, and the
    lattice's centre qubit (the BFS start); names and any pre-existing
    frequencies are deliberately excluded so that identical connection
    designs share one allocation.
    """
    return (
        tuple(architecture.qubits),
        tuple(architecture.coupling_edges()),
        architecture.lattice.central_qubit(),
    )


@dataclass
class _ProfileEntry:
    """A memoized profile plus the exact gate tuple that produced it."""

    gates: Tuple
    profile: CircuitProfile


class DesignEngine:
    """Runs the design flow with independently memoized stages.

    One engine serves any number of circuits and option sets — every
    stage key embeds whatever configuration the stage reads, so a single
    shared engine per process (or per sweep) is both safe and maximally
    effective.

    Args:
        max_entries: Bound on memoized entries per stage (None = unbounded).
        frequency_cache: Optional externally owned :class:`DesignCache`
            for the frequency-allocation stage (a fresh bounded cache is
            created when omitted).  Passing one shares persisted
            Algorithm 3 plans across engines, exactly as
            :class:`~repro.mapping.engine.RoutingEngine` shares a
            :class:`~repro.mapping.engine.RoutingCache`.
    """

    def __init__(
        self,
        max_entries: Optional[int] = DEFAULT_STAGE_ENTRIES,
        frequency_cache: Optional[DesignCache] = None,
    ) -> None:
        self._profiles = StageCache("profile", max_entries)
        self._layouts = StageCache("layout", max_entries)
        self._selections = StageCache("bus-selection", max_entries)
        self._frequencies = (
            frequency_cache if frequency_cache is not None
            else DesignCache(max_entries)
        )

    @property
    def frequency_cache(self) -> DesignCache:
        """The persistable frequency-stage cache (see :class:`DesignCache`).

        Use ``engine.frequency_cache.load(path, missing_ok=True)`` to
        warm-start a session and ``engine.frequency_cache.merge_save(path)``
        to persist its Algorithm 3 plans at the end of one.
        """
        return self._frequencies

    # -- stages ----------------------------------------------------------------

    def profile(self, circuit: QuantumCircuit) -> CircuitProfile:
        """The circuit's profile (stage 0), memoized by content digest."""
        key = circuit_design_key(circuit)
        gates = circuit.gates
        entry = self._profiles.lookup(key)
        if entry is not None:
            if entry.gates is gates:
                return entry.profile
            if entry.gates == gates:
                # Adopt the requesting circuit's gate tuple so repeated
                # calls with this object take the identity fast path: the
                # design flow profiles the same circuit object many times
                # per series, and one O(n) confirmation per new object is
                # all the digest-collision guard needs.
                entry.gates = gates
                return entry.profile
        profile = profile_circuit(circuit)
        self._profiles.put(key, _ProfileEntry(gates=gates, profile=profile))
        return profile

    def layout(self, circuit: QuantumCircuit) -> LayoutResult:
        """The circuit's qubit layout (Algorithm 1), via the profile stage."""
        return self.layout_for(self.profile(circuit))

    def layout_for(self, profile: CircuitProfile) -> LayoutResult:
        """The layout of an already profiled circuit, memoized by profile digest."""
        key = (profile_layout_digest(profile),)
        layout = self._layouts.lookup(key)
        if layout is None:
            layout = design_layout(profile)
            self._layouts.put(key, layout)
        return layout

    def bus_selection(
        self,
        circuit: QuantumCircuit,
        max_buses: Optional[int],
        options: Optional[DesignOptions] = None,
    ) -> BusSelectionResult:
        """The bus selection (Algorithm 2) under at most ``max_buses`` buses.

        Selections are prefix-stable in the bus budget, so the engine
        memoizes one *full-length* selection per (layout, strategy, seed)
        and serves every budget as a prefix of it.  ``max_buses=None``
        selects as many squares as the prohibition constraint allows.
        """
        if max_buses is not None and max_buses < 0:
            raise ValueError("the number of 4-qubit buses cannot be negative")
        options = options or DesignOptions()
        profile = self.profile(circuit)
        layout = self.layout_for(profile)
        full = self._full_selection(profile, layout, options)
        if full is None:
            # Unseeded random selection is intentionally non-deterministic:
            # compute directly, bypassing the cache.
            if max_buses is None:
                max_buses = sum(1 for _ in layout.lattice.squares(min_occupied=3))
            return select_random_buses(
                layout.lattice, max_buses, seed=options.random_bus_seed
            )
        limit = len(full.selected_squares) if max_buses is None else int(max_buses)
        return BusSelectionResult(
            selected_squares=list(full.selected_squares[:limit]),
            weights=dict(full.weights),
            max_available=full.max_available,
        )

    def _full_selection(
        self, profile: CircuitProfile, layout: LayoutResult, options: DesignOptions
    ) -> Optional[BusSelectionResult]:
        """The memoized full-length selection sequence (None when uncacheable)."""
        layout_digest = profile_layout_digest(profile)
        if options.bus_strategy is BusStrategy.RANDOM:
            if options.random_bus_seed is None:
                return None
            key = ("random", layout_digest, options.random_bus_seed)
            full = self._selections.lookup(key)
            if full is None:
                num_candidates = sum(1 for _ in layout.lattice.squares(min_occupied=3))
                full = select_random_buses(
                    layout.lattice, num_candidates, seed=options.random_bus_seed
                )
                self._selections.put(key, full)
            return full
        key = ("filtered", layout_digest)
        full = self._selections.lookup(key)
        if full is None:
            full = select_four_qubit_buses(layout.lattice, profile, None)
            self._selections.put(key, full)
        return full

    def realized_bus_count(
        self,
        circuit: QuantumCircuit,
        max_buses: int,
        options: Optional[DesignOptions] = None,
    ) -> int:
        """How many 4-qubit buses a budget of ``max_buses`` actually realizes.

        Cheap (selection-stage only): callers generating bus-count series
        use it to skip budgets that would duplicate the previous design
        *before* paying for frequency allocation.  Only meaningful for
        deterministic selections — unseeded random selection redraws on
        every call, so its count need not match a later design's.
        """
        return len(self.bus_selection(circuit, max_buses, options).selected_squares)

    def max_four_qubit_buses(
        self, circuit: QuantumCircuit, options: Optional[DesignOptions] = None
    ) -> int:
        """The largest number of 4-qubit buses the generated layout can host.

        Always derived from the deterministic filtered-weight selection,
        matching the pre-engine flow where ``max_four_qubit_buses``
        ignored the configured bus strategy.
        """
        del options  # series size does not depend on the selection knobs
        return self.bus_selection(circuit, None, DesignOptions()).max_available

    def frequencies_for(
        self, architecture: Architecture, options: Optional[DesignOptions] = None
    ) -> Dict[int, float]:
        """The architecture's frequency plan under ``options`` (stage 4).

        Optimized (Algorithm 3) plans are memoized by the architecture's
        collision structure; the 5-frequency scheme is computed directly
        (it is a closed-form pattern lookup).
        """
        options = options or DesignOptions()
        if options.frequency_strategy is FrequencyStrategy.FIVE_FREQUENCY:
            return five_frequency_scheme(architecture.coordinates())
        # ``frequency_screening`` is deliberately absent from the key:
        # screening is winner-preserving, so screened and unscreened runs
        # produce identical plans — and persisted DesignCache files stay
        # valid (and shared) whichever way they were generated.
        key = (
            architecture_collision_key(architecture),
            options.sigma_ghz,
            options.local_trials,
            options.frequency_seed,
            options.frequency_refinement_passes,
            options.allocation_strategy,
        )
        frequencies = self._frequencies.lookup(key)
        if frequencies is None:
            allocator = FrequencyAllocator(
                sigma_ghz=options.sigma_ghz,
                local_trials=options.local_trials,
                seed=options.frequency_seed,
                refinement_passes=options.frequency_refinement_passes,
                strategy=options.allocation_strategy,
                screening=options.frequency_screening,
            )
            frequencies = allocator.allocate(architecture)
            self._frequencies.put(key, frequencies)
        return dict(frequencies)

    # -- whole designs ---------------------------------------------------------

    def design(
        self,
        circuit: QuantumCircuit,
        max_four_qubit_buses: int = 0,
        options: Optional[DesignOptions] = None,
        name: Optional[str] = None,
    ) -> Architecture:
        """One architecture with at most the given number of 4-qubit buses.

        Equivalent to running the full flow from scratch; each stage is
        served from its cache when its inputs are unchanged.  The returned
        architecture is freshly constructed on every call (its frequency
        dict and bus list are caller-owned), so callers may rename or
        mutate it without poisoning the stage caches.
        """
        options = options or DesignOptions()
        selection = self.bus_selection(circuit, max_four_qubit_buses, options)
        layout = self.layout(circuit)
        architecture = Architecture.from_layout(
            name=name or self._default_name(
                circuit, options, len(selection.selected_squares)
            ),
            lattice=layout.lattice,
            four_qubit_squares=selection.selected_squares,
            logical_to_physical=layout.logical_to_physical,
        )
        architecture.frequencies = self.frequencies_for(architecture, options)
        return architecture

    def design_series(
        self,
        circuit: QuantumCircuit,
        max_buses: Optional[int] = None,
        options: Optional[DesignOptions] = None,
    ) -> List[Architecture]:
        """A series of architectures with 0, 1, ..., N 4-qubit buses.

        ``N`` defaults to the maximum number the layout allows, which is
        how the paper generates its per-benchmark Pareto curves.  Bus
        budgets the selection cannot realize (because the prohibition
        constraint ran out of squares) would duplicate the previous
        member; they are skipped *before* frequency allocation runs.
        """
        options = options or DesignOptions()
        limit = (
            self.max_four_qubit_buses(circuit, options)
            if max_buses is None else int(max_buses)
        )
        # Deterministic selections can be sized cheaply before designing;
        # unseeded random selection redraws per call, so the only draw
        # that reflects the built architecture is the design's own — fall
        # back to post-design dedup for it, like the pre-engine flow.
        predictable = not (
            options.bus_strategy is BusStrategy.RANDOM
            and options.random_bus_seed is None
        )
        series: List[Architecture] = []
        previous_count = -1
        for budget in range(limit + 1):
            if predictable:
                realized = self.realized_bus_count(circuit, budget, options)
                if realized == previous_count:
                    continue
                series.append(self.design(circuit, budget, options))
            else:
                architecture = self.design(circuit, budget, options)
                realized = len(architecture.four_qubit_buses())
                if realized == previous_count:
                    continue
                series.append(architecture)
            previous_count = realized
        return series

    # -- reporting -------------------------------------------------------------

    def stats(self) -> Dict[str, Dict[str, int]]:
        """Per-stage cache statistics (entries / hits / misses)."""
        return {
            cache.name: cache.stats()
            for cache in (
                self._profiles, self._layouts, self._selections, self._frequencies
            )
        }

    def clear(self) -> None:
        for cache in (self._profiles, self._layouts, self._selections, self._frequencies):
            cache.clear()

    @staticmethod
    def _default_name(circuit: QuantumCircuit, options: DesignOptions, num_buses: int) -> str:
        strategy = "rd" if options.bus_strategy is BusStrategy.RANDOM else "eff"
        freq = "5freq" if options.frequency_strategy is FrequencyStrategy.FIVE_FREQUENCY \
            else "optfreq"
        return f"{strategy}_{circuit.name}_{num_buses}x4qbus_{freq}"
