"""Layout design subroutine — Algorithm 1 of the paper.

Qubits are placed one at a time on an initially empty 2D lattice:

1. the qubit with the largest coupling degree is placed at (0, 0);
2. among the not-yet-placed qubits that couple to at least one placed
   qubit, the one with the largest coupling degree is selected next;
3. it is placed on the empty node, adjacent to at least one occupied
   node, that minimizes the heuristic cost
   ``sum over placed neighbours q' of  strength(q, q') * manhattan(node, node(q'))``.

The physical qubit id equals the logical qubit id, so the pseudo-mapping
between program qubits and hardware qubits recorded by this subroutine is
the identity; the geometric structure (who is adjacent to whom) is what
carries the profiling information into the later subroutines and into the
mapper's initial placement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.hardware.lattice import Coordinate, Lattice, manhattan_distance
from repro.profiling.profiler import CircuitProfile


@dataclass
class LayoutResult:
    """Output of the layout design subroutine.

    Attributes:
        lattice: The placed qubits (physical id = logical id).
        placement_order: Qubits in the order they were placed.
        logical_to_physical: The identity pseudo-mapping recorded for the mapper.
    """

    lattice: Lattice
    placement_order: List[int]
    logical_to_physical: Dict[int, int]


def design_layout(profile: CircuitProfile) -> LayoutResult:
    """Run Algorithm 1 on a circuit profile.

    Disconnected program qubits (qubits with no two-qubit gates, or
    belonging to another connected component of the logical coupling
    graph) are handled by falling back to the highest-degree remaining
    qubit and placing it at the cheapest frontier node, which keeps the
    layout a single connected patch of the lattice so that every qubit can
    be wired with nearest-neighbour buses.
    """
    lattice = Lattice()
    placement_order: List[int] = []
    degree_rank = {qubit: rank for rank, (qubit, _degree) in enumerate(profile.degree_list)}
    remaining = set(range(profile.num_qubits))

    first_qubit = profile.degree_list[0][0]
    lattice.place(first_qubit, (0, 0))
    placement_order.append(first_qubit)
    remaining.discard(first_qubit)

    while remaining:
        candidate = _next_qubit(profile, lattice, remaining, degree_rank)
        location = _best_location(profile, lattice, candidate)
        lattice.place(candidate, location)
        placement_order.append(candidate)
        remaining.discard(candidate)

    logical_to_physical = {qubit: qubit for qubit in range(profile.num_qubits)}
    return LayoutResult(
        lattice=lattice,
        placement_order=placement_order,
        logical_to_physical=logical_to_physical,
    )


def _next_qubit(
    profile: CircuitProfile,
    lattice: Lattice,
    remaining: set,
    degree_rank: Dict[int, int],
) -> int:
    """The next qubit to place: highest-degree candidate coupled to a placed qubit.

    Falls back to the highest-degree remaining qubit when no remaining
    qubit couples to the placed set (disconnected coupling graph).
    """
    placed = set(lattice.qubits)
    candidates = [
        qubit
        for qubit in remaining
        if any(neighbor in placed for neighbor in profile.neighbors(qubit))
    ]
    pool = candidates if candidates else list(remaining)
    return min(pool, key=lambda qubit: (degree_rank[qubit], qubit))


def _best_location(profile: CircuitProfile, lattice: Lattice, qubit: int) -> Coordinate:
    """The frontier node minimizing the Algorithm 1 cost function for ``qubit``."""
    placed = set(lattice.qubits)
    placed_neighbors = [q for q in profile.neighbors(qubit) if q in placed]
    center = _rounded_center(lattice)
    best_location: Optional[Coordinate] = None
    best_key: Optional[Tuple[float, int, Coordinate]] = None
    for location in lattice.empty_frontier():
        cost = 0.0
        for neighbor in placed_neighbors:
            cost += profile.strength(qubit, neighbor) * manhattan_distance(
                location, lattice.node_of(neighbor)
            )
        # Deterministic tie-break: prefer the node closest to the centre of the
        # current patch, then the lexicographically smallest coordinate.  This
        # keeps layouts compact when several nodes have equal heuristic cost
        # (e.g. the very first few placements, where the cost is 0 or symmetric).
        key = (cost, manhattan_distance(location, center), location)
        if best_key is None or key < best_key:
            best_key = key
            best_location = location
    if best_location is None:
        raise RuntimeError("no frontier node available (lattice is empty?)")
    return best_location


def _rounded_center(lattice: Lattice) -> Coordinate:
    center_x, center_y = lattice.geometric_center()
    return (int(round(center_x)), int(round(center_y)))
