"""Bus selection subroutine — Algorithm 2 of the paper.

After the layout subroutine has placed the qubits, every lattice edge
between occupied nodes carries a 2-qubit bus by default.  This subroutine
decides which lattice *squares* should be upgraded to 4-qubit buses,
which additionally couples the qubits on the square diagonals at a yield
cost.

Two physical constraints shape the selection:

* **Prohibited condition** — two adjacent squares cannot both carry
  4-qubit buses (they would create a duplicated physical connection,
  paper Figure 7 (a)).
* **Corner case** — a square with only three occupied corners degenerates
  to a 3-qubit bus whose benefit is the coupling strength of the one
  diagonal that has both qubits (paper Figure 7 (b)).

The heuristic (Algorithm 2): each square's *cross-coupling weight* is the
profiled coupling strength summed over its occupied diagonals; its
*filtered weight* subtracts the weights of the four neighbouring squares,
accounting for the squares that selecting it would block.  Squares are
selected greedily by filtered weight, blocking their neighbours each
iteration, until the requested number of buses is reached or no square
remains available.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

import numpy as np

from repro.hardware.lattice import Coordinate, Lattice, Square
from repro.profiling.profiler import CircuitProfile
from repro.utils.rng import deterministic_rng


@dataclass
class BusSelectionResult:
    """Output of the bus selection subroutine.

    Attributes:
        selected_squares: Squares chosen for 4-qubit buses, in selection order.
        weights: The initial cross-coupling weight of every candidate square.
        max_available: The largest number of non-conflicting 4-qubit buses
            that could have been selected (used to size architecture series).
    """

    selected_squares: List[Square]
    weights: Dict[Coordinate, int] = field(default_factory=dict)
    max_available: int = 0


def cross_coupling_weights(lattice: Lattice, profile: CircuitProfile) -> Dict[Coordinate, int]:
    """Cross-coupling weight of every candidate square (keyed by square origin).

    The weight of a fully occupied square is the sum of the profiled
    coupling strengths of its two diagonals; a 3-occupied square counts
    only the diagonal whose two corners are occupied.
    """
    weights: Dict[Coordinate, int] = {}
    for square in lattice.squares(min_occupied=3):
        weight = 0
        for node_a, node_b in square.diagonals:
            qubit_a = lattice.qubit_at(node_a)
            qubit_b = lattice.qubit_at(node_b)
            if qubit_a is not None and qubit_b is not None:
                weight += profile.strength(qubit_a, qubit_b)
        weights[square.origin] = int(weight)
    return weights


def select_four_qubit_buses(
    lattice: Lattice,
    profile: CircuitProfile,
    max_buses: Optional[int] = None,
) -> BusSelectionResult:
    """Run Algorithm 2: filtered-weight greedy selection of 4-qubit bus squares.

    Args:
        lattice: The placed qubit layout.
        profile: Profiling result providing the coupling strength matrix.
        max_buses: Maximum number of 4-qubit buses (``K`` in the paper).
            ``None`` selects as many as the prohibition constraint allows.

    Returns:
        The selected squares in selection order, together with the initial
        square weights and the maximum number of selectable squares.
    """
    initial_weights = cross_coupling_weights(lattice, profile)
    limit = len(initial_weights) if max_buses is None else max(0, int(max_buses))

    weights = dict(initial_weights)
    blocked: Set[Coordinate] = set()
    selected: List[Square] = []
    remaining = limit
    while remaining > 0:
        available = [origin for origin in weights if origin not in blocked]
        if not available:
            break
        best_origin = max(
            available,
            key=lambda origin: (_filtered_weight(origin, weights, blocked), _tiebreak(origin)),
        )
        square = Square(best_origin)
        selected.append(square)
        blocked.add(best_origin)
        for neighbor in square.neighbors():
            if neighbor.origin in weights:
                weights[neighbor.origin] = 0
                blocked.add(neighbor.origin)
        remaining -= 1

    max_available = _count_max_selectable(initial_weights)
    return BusSelectionResult(
        selected_squares=selected,
        weights=initial_weights,
        max_available=max_available,
    )


def select_random_buses(
    lattice: Lattice,
    num_buses: int,
    seed: Optional[int] = None,
) -> BusSelectionResult:
    """Random bus selection baseline (the ``eff-rd-bus`` configuration).

    Squares are drawn uniformly at random among those not conflicting with
    already selected squares, until ``num_buses`` squares have been picked
    or no non-conflicting square remains.  The prohibition constraint is
    always satisfied.
    """
    rng = deterministic_rng("random-bus", seed) if seed is not None else np.random.default_rng()
    candidates = [square.origin for square in lattice.squares(min_occupied=3)]
    blocked: Set[Coordinate] = set()
    selected: List[Square] = []
    while len(selected) < num_buses:
        available = [origin for origin in candidates if origin not in blocked]
        if not available:
            break
        origin = tuple(available[int(rng.integers(len(available)))])
        square = Square(origin)
        selected.append(square)
        blocked.add(origin)
        for neighbor in square.neighbors():
            blocked.add(neighbor.origin)
    max_available = _count_max_selectable({origin: 0 for origin in candidates})
    return BusSelectionResult(selected_squares=selected, weights={}, max_available=max_available)


def _filtered_weight(
    origin: Coordinate, weights: Dict[Coordinate, int], blocked: Set[Coordinate]
) -> int:
    """Filtered weight of a square: own weight minus its neighbours' weights."""
    square = Square(origin)
    value = weights.get(origin, 0)
    for neighbor in square.neighbors():
        value -= weights.get(neighbor.origin, 0)
    return value


def _tiebreak(origin: Coordinate) -> tuple:
    """Deterministic tie-break favouring lexicographically small origins."""
    return (-origin[0], -origin[1])


def _count_max_selectable(weights: Dict[Coordinate, int]) -> int:
    """Greedy estimate of how many non-adjacent squares can be selected.

    The paper sizes its architecture series by "the number of squares the
    generated layout provides"; a simple greedy sweep in lexicographic
    order gives a deterministic and near-maximal count (exactly maximal on
    rectangular layouts, where it reduces to the checkerboard packing).
    """
    blocked: Set[Coordinate] = set()
    count = 0
    for origin in sorted(weights):
        if origin in blocked:
            continue
        count += 1
        blocked.add(origin)
        for neighbor in Square(origin).neighbors():
            blocked.add(neighbor.origin)
    return count
