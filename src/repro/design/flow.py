"""End-to-end architecture design flow (paper Figure 1).

:class:`DesignFlow` chains the three subroutines:

1. profile the program (coupling strength matrix + coupling degree list);
2. design the qubit layout (Algorithm 1);
3. select squares for 4-qubit buses (Algorithm 2) — or randomly, for the
   ``eff-rd-bus`` ablation;
4. allocate qubit frequencies (Algorithm 3) — or apply IBM's 5-frequency
   scheme, for the ``eff-5-freq`` ablation.

Varying the maximum number of 4-qubit buses produces a *series* of
architectures trading yield for performance, which is how the paper draws
each blue ``eff-full`` curve of Figure 10.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

from repro.circuit.circuit import QuantumCircuit
from repro.design.bus_selection import (
    BusSelectionResult,
    select_four_qubit_buses,
    select_random_buses,
)
from repro.design.frequency_allocation import FrequencyAllocator
from repro.design.layout import LayoutResult, design_layout
from repro.hardware.architecture import Architecture
from repro.hardware.frequency import DEFAULT_SIGMA_GHZ, five_frequency_scheme
from repro.profiling.profiler import CircuitProfile, profile_circuit


class BusStrategy(enum.Enum):
    """How 4-qubit bus squares are chosen."""

    FILTERED_WEIGHT = "filtered_weight"
    RANDOM = "random"


class FrequencyStrategy(enum.Enum):
    """How qubit frequencies are designed."""

    OPTIMIZED = "optimized"
    FIVE_FREQUENCY = "five_frequency"


@dataclass
class DesignOptions:
    """Knobs of the design flow.

    Attributes:
        bus_strategy: Filtered-weight greedy (Algorithm 2) or random selection.
        frequency_strategy: Centre-out yield-driven search (Algorithm 3) or
            IBM's regular 5-frequency scheme.
        sigma_ghz: Fabrication precision assumed during frequency allocation.
        local_trials: Monte Carlo trials per candidate in Algorithm 3.
        random_bus_seed: Seed for the random bus selection baseline.
        frequency_seed: Seed for the frequency allocator's local simulations.
        frequency_refinement_passes: Coordinate-descent sweeps after the
            BFS frequency assignment.  The default of 0 reproduces the
            paper's Algorithm 3 exactly; non-zero values implement the
            global-optimization extension the paper's Discussion suggests.
    """

    bus_strategy: BusStrategy = BusStrategy.FILTERED_WEIGHT
    frequency_strategy: FrequencyStrategy = FrequencyStrategy.OPTIMIZED
    sigma_ghz: float = DEFAULT_SIGMA_GHZ
    local_trials: int = 2000
    random_bus_seed: Optional[int] = None
    frequency_seed: int = 2020
    frequency_refinement_passes: int = 0


class DesignFlow:
    """The automatic application-specific architecture design flow.

    Args:
        circuit: The quantum program to design an architecture for.
        options: Flow configuration (defaults reproduce the paper's
            ``eff-full`` configuration).
    """

    def __init__(self, circuit: QuantumCircuit, options: Optional[DesignOptions] = None) -> None:
        self.circuit = circuit
        self.options = options or DesignOptions()
        self._profile: Optional[CircuitProfile] = None
        self._layout: Optional[LayoutResult] = None

    # -- cached intermediate results ------------------------------------------------

    @property
    def profile(self) -> CircuitProfile:
        """Profiling result (computed lazily, cached)."""
        if self._profile is None:
            self._profile = profile_circuit(self.circuit)
        return self._profile

    @property
    def layout(self) -> LayoutResult:
        """Layout design result (computed lazily, cached)."""
        if self._layout is None:
            self._layout = design_layout(self.profile)
        return self._layout

    def max_four_qubit_buses(self) -> int:
        """The largest number of 4-qubit buses the generated layout can host."""
        return select_four_qubit_buses(self.layout.lattice, self.profile, None).max_available

    # -- single architecture --------------------------------------------------------

    def design(self, max_four_qubit_buses: int = 0, name: Optional[str] = None) -> Architecture:
        """Produce one architecture with at most the given number of 4-qubit buses."""
        selection = self._select_buses(max_four_qubit_buses)
        architecture = Architecture.from_layout(
            name=name or self._default_name(len(selection.selected_squares)),
            lattice=self.layout.lattice,
            four_qubit_squares=selection.selected_squares,
            logical_to_physical=self.layout.logical_to_physical,
        )
        frequencies = self._design_frequencies(architecture)
        architecture.frequencies = frequencies
        return architecture

    def design_series(self, max_buses: Optional[int] = None) -> List[Architecture]:
        """A series of architectures with 0, 1, ..., N 4-qubit buses.

        ``N`` defaults to the maximum number the layout allows, which is how
        the paper generates its per-benchmark Pareto curves.  Requested bus
        counts that the selection cannot actually realize (because the
        prohibition constraint ran out of squares) would duplicate the
        previous member, so such duplicates are dropped.
        """
        limit = self.max_four_qubit_buses() if max_buses is None else int(max_buses)
        series: List[Architecture] = []
        for k in range(limit + 1):
            architecture = self.design(max_four_qubit_buses=k)
            if series and len(architecture.four_qubit_buses()) == len(
                series[-1].four_qubit_buses()
            ):
                continue
            series.append(architecture)
        return series

    # -- internals -------------------------------------------------------------------

    def _select_buses(self, max_buses: int) -> BusSelectionResult:
        if max_buses < 0:
            raise ValueError("the number of 4-qubit buses cannot be negative")
        if self.options.bus_strategy is BusStrategy.RANDOM:
            return select_random_buses(
                self.layout.lattice, max_buses, seed=self.options.random_bus_seed
            )
        return select_four_qubit_buses(self.layout.lattice, self.profile, max_buses)

    def _design_frequencies(self, architecture: Architecture) -> Dict[int, float]:
        if self.options.frequency_strategy is FrequencyStrategy.FIVE_FREQUENCY:
            return five_frequency_scheme(architecture.coordinates())
        allocator = FrequencyAllocator(
            sigma_ghz=self.options.sigma_ghz,
            local_trials=self.options.local_trials,
            seed=self.options.frequency_seed,
            refinement_passes=self.options.frequency_refinement_passes,
        )
        return allocator.allocate(architecture)

    def _default_name(self, num_buses: int) -> str:
        strategy = "rd" if self.options.bus_strategy is BusStrategy.RANDOM else "eff"
        freq = "5freq" if self.options.frequency_strategy is FrequencyStrategy.FIVE_FREQUENCY \
            else "optfreq"
        return f"{strategy}_{self.circuit.name}_{num_buses}x4qbus_{freq}"


def design_architecture(
    circuit: QuantumCircuit,
    max_four_qubit_buses: int = 0,
    options: Optional[DesignOptions] = None,
) -> Architecture:
    """Design a single application-specific architecture for ``circuit``."""
    return DesignFlow(circuit, options).design(max_four_qubit_buses=max_four_qubit_buses)


def design_architecture_series(
    circuit: QuantumCircuit,
    max_buses: Optional[int] = None,
    options: Optional[DesignOptions] = None,
) -> List[Architecture]:
    """Design the full yield/performance trade-off series for ``circuit``."""
    return DesignFlow(circuit, options).design_series(max_buses=max_buses)
