"""End-to-end architecture design flow (paper Figure 1).

:class:`DesignFlow` chains the three subroutines:

1. profile the program (coupling strength matrix + coupling degree list);
2. design the qubit layout (Algorithm 1);
3. select squares for 4-qubit buses (Algorithm 2) — or randomly, for the
   ``eff-rd-bus`` ablation;
4. allocate qubit frequencies (Algorithm 3) — or apply IBM's 5-frequency
   scheme, for the ``eff-5-freq`` ablation.

Varying the maximum number of 4-qubit buses produces a *series* of
architectures trading yield for performance, which is how the paper draws
each blue ``eff-full`` curve of Figure 10.

The flow itself executes on a :class:`~repro.design.engine.DesignEngine`,
which memoizes each stage independently under content-derived keys: a
flow owns a private engine by default, and callers generating many
related designs (evaluation sweeps, benchmark grids) pass one shared
engine so profiles, layouts, bus-selection sequences and frequency plans
are computed once per distinct input instead of once per flow.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.circuit.circuit import QuantumCircuit
from repro.design.bus_selection import BusSelectionResult
from repro.design.engine import (
    BusStrategy,
    DesignEngine,
    DesignOptions,
    FrequencyStrategy,
)
from repro.design.layout import LayoutResult
from repro.hardware.architecture import Architecture
from repro.profiling.profiler import CircuitProfile

__all__ = [
    "BusStrategy",
    "FrequencyStrategy",
    "DesignOptions",
    "DesignFlow",
    "design_architecture",
    "design_architecture_series",
]


class DesignFlow:
    """The automatic application-specific architecture design flow.

    Args:
        circuit: The quantum program to design an architecture for.
        options: Flow configuration (defaults reproduce the paper's
            ``eff-full`` configuration).
        engine: Optional shared :class:`DesignEngine`; a private engine is
            created when omitted.  Results are identical either way —
            sharing only changes how much work is memoized across flows.
    """

    def __init__(
        self,
        circuit: QuantumCircuit,
        options: Optional[DesignOptions] = None,
        engine: Optional[DesignEngine] = None,
    ) -> None:
        self.circuit = circuit
        self.options = options or DesignOptions()
        self.engine = engine if engine is not None else DesignEngine()

    # -- cached intermediate results ------------------------------------------------

    @property
    def profile(self) -> CircuitProfile:
        """Profiling result (computed lazily, memoized by the engine)."""
        return self.engine.profile(self.circuit)

    @property
    def layout(self) -> LayoutResult:
        """Layout design result (computed lazily, memoized by the engine)."""
        return self.engine.layout(self.circuit)

    def max_four_qubit_buses(self) -> int:
        """The largest number of 4-qubit buses the generated layout can host."""
        return self.engine.max_four_qubit_buses(self.circuit, self.options)

    # -- single architecture --------------------------------------------------------

    def design(self, max_four_qubit_buses: int = 0, name: Optional[str] = None) -> Architecture:
        """Produce one architecture with at most the given number of 4-qubit buses."""
        return self.engine.design(
            self.circuit, max_four_qubit_buses, self.options, name=name
        )

    def design_series(self, max_buses: Optional[int] = None) -> List[Architecture]:
        """A series of architectures with 0, 1, ..., N 4-qubit buses.

        ``N`` defaults to the maximum number the layout allows, which is how
        the paper generates its per-benchmark Pareto curves.  Requested bus
        counts that the selection cannot actually realize (because the
        prohibition constraint ran out of squares) would duplicate the
        previous member, so such duplicates are dropped.
        """
        return self.engine.design_series(self.circuit, max_buses, self.options)

    # -- internals -------------------------------------------------------------------

    def _select_buses(self, max_buses: int) -> BusSelectionResult:
        """The bus selection for one budget (kept for API compatibility)."""
        return self.engine.bus_selection(self.circuit, max_buses, self.options)

    def _design_frequencies(self, architecture: Architecture) -> Dict[int, float]:
        """The frequency plan for a finished connection design (engine stage)."""
        return self.engine.frequencies_for(architecture, self.options)


def design_architecture(
    circuit: QuantumCircuit,
    max_four_qubit_buses: int = 0,
    options: Optional[DesignOptions] = None,
) -> Architecture:
    """Design a single application-specific architecture for ``circuit``."""
    return DesignFlow(circuit, options).design(max_four_qubit_buses=max_four_qubit_buses)


def design_architecture_series(
    circuit: QuantumCircuit,
    max_buses: Optional[int] = None,
    options: Optional[DesignOptions] = None,
) -> List[Architecture]:
    """Design the full yield/performance trade-off series for ``circuit``."""
    return DesignFlow(circuit, options).design_series(max_buses=max_buses)
