"""Superconducting quantum processor hardware model.

The hardware model mirrors Section 2.2 of the paper: physical qubits are
placed on the nodes of a 2D lattice, connected by 2-qubit or 4-qubit
resonator buses, and each qubit has a designed (pre-fabrication)
frequency.  :class:`Architecture` bundles the three together and derives
the chip coupling graph used by both the yield simulator and the qubit
mapper.
"""

from repro.hardware.lattice import Coordinate, Lattice, Square, manhattan_distance
from repro.hardware.bus import Bus, BusType
from repro.hardware.architecture import Architecture
from repro.hardware.frequency import (
    ALLOWED_FREQUENCY_MAX_GHZ,
    ALLOWED_FREQUENCY_MIN_GHZ,
    FIVE_FREQUENCY_VALUES_GHZ,
    candidate_frequencies,
    five_frequency_scheme,
)
from repro.hardware.ibm import (
    ibm_16q_2x8,
    ibm_20q_4x5,
    ibm_baseline,
    ibm_baselines,
)

__all__ = [
    "Coordinate",
    "Lattice",
    "Square",
    "manhattan_distance",
    "Bus",
    "BusType",
    "Architecture",
    "ALLOWED_FREQUENCY_MIN_GHZ",
    "ALLOWED_FREQUENCY_MAX_GHZ",
    "FIVE_FREQUENCY_VALUES_GHZ",
    "five_frequency_scheme",
    "candidate_frequencies",
    "ibm_16q_2x8",
    "ibm_20q_4x5",
    "ibm_baseline",
    "ibm_baselines",
]
