"""IBM general-purpose baseline architectures (paper Figure 9).

The paper's ``ibm`` configuration contains four architectures:

1. 16 qubits on a 2x8 lattice, 2-qubit buses only;
2. 16 qubits on a 2x8 lattice, as many 4-qubit buses as possible (four);
3. 20 qubits on a 4x5 lattice, 2-qubit buses only;
4. 20 qubits on a 4x5 lattice, as many 4-qubit buses as possible (six).

All four use the 5-frequency scheme (an arithmetic progression from
5.00 GHz to 5.27 GHz arranged so adjacent qubits never share a label).
"""

from __future__ import annotations

from typing import Dict, List

from repro.hardware.architecture import Architecture
from repro.hardware.frequency import five_frequency_scheme
from repro.hardware.lattice import Lattice, Square


def _max_four_qubit_squares(lattice: Lattice) -> List[Square]:
    """Greedy checkerboard selection of the maximum set of non-adjacent squares.

    For a ``rows x cols`` rectangle the full squares form a
    ``(rows-1) x (cols-1)`` grid and picking the squares whose origin has
    even ``x + y`` parity yields the maximum independent set under the
    adjacency prohibition: 4 squares on the 2x8 chip and 6 on the 4x5 chip,
    matching Figure 9.
    """
    selected: List[Square] = []
    for square in lattice.squares(min_occupied=4):
        x, y = square.origin
        if (x + y) % 2 == 0:
            if all(not square.is_adjacent_to(other) for other in selected):
                selected.append(square)
    return selected


def ibm_16q_2x8(use_four_qubit_buses: bool = False) -> Architecture:
    """The 16-qubit 2x8 IBM baseline (Figure 9, designs (1) and (2))."""
    lattice = Lattice.rectangle(2, 8)
    squares = _max_four_qubit_squares(lattice) if use_four_qubit_buses else []
    name = "ibm_16q_2x8_4qbus" if use_four_qubit_buses else "ibm_16q_2x8_2qbus"
    return Architecture.from_layout(
        name=name,
        lattice=lattice,
        four_qubit_squares=squares,
        frequencies=five_frequency_scheme(lattice.coordinates()),
    )


def ibm_20q_4x5(use_four_qubit_buses: bool = False) -> Architecture:
    """The 20-qubit 4x5 IBM baseline (Figure 9, designs (3) and (4))."""
    lattice = Lattice.rectangle(4, 5)
    squares = _max_four_qubit_squares(lattice) if use_four_qubit_buses else []
    name = "ibm_20q_4x5_4qbus" if use_four_qubit_buses else "ibm_20q_4x5_2qbus"
    return Architecture.from_layout(
        name=name,
        lattice=lattice,
        four_qubit_squares=squares,
        frequencies=five_frequency_scheme(lattice.coordinates()),
    )


def ibm_baseline(index: int) -> Architecture:
    """The baseline architecture labeled ``(index)`` in Figure 9/10 (1-based)."""
    builders = {
        1: lambda: ibm_16q_2x8(use_four_qubit_buses=False),
        2: lambda: ibm_16q_2x8(use_four_qubit_buses=True),
        3: lambda: ibm_20q_4x5(use_four_qubit_buses=False),
        4: lambda: ibm_20q_4x5(use_four_qubit_buses=True),
    }
    if index not in builders:
        raise ValueError(f"baseline index must be 1-4, got {index}")
    return builders[index]()


def ibm_baselines() -> Dict[int, Architecture]:
    """All four baseline architectures keyed by their Figure 9 label."""
    return {index: ibm_baseline(index) for index in (1, 2, 3, 4)}
