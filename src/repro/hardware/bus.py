"""Resonator buses connecting physical qubits (paper Section 2.2, Figure 2)."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from itertools import combinations
from typing import List, Optional, Tuple

from repro.hardware.lattice import Square


class BusType(enum.Enum):
    """The two bus designs considered by the paper."""

    TWO_QUBIT = "two_qubit"
    FOUR_QUBIT = "four_qubit"


@dataclass(frozen=True)
class Bus:
    """A resonator connecting 2-4 nearby physical qubits.

    Attributes:
        bus_type: 2-qubit or 4-qubit bus.
        qubits: The connected physical qubits (sorted).  A 4-qubit bus placed
            on a square with only three occupied corners degenerates into a
            3-qubit bus (paper Figure 7 (b)) and therefore carries 3 qubits.
        square: For 4-qubit buses, the lattice square the bus occupies.
    """

    bus_type: BusType
    qubits: Tuple[int, ...]
    square: Optional[Square] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "qubits", tuple(sorted(self.qubits)))
        if self.bus_type is BusType.TWO_QUBIT and len(self.qubits) != 2:
            raise ValueError(f"a 2-qubit bus connects exactly 2 qubits, got {self.qubits}")
        if self.bus_type is BusType.FOUR_QUBIT and len(self.qubits) not in (3, 4):
            raise ValueError(
                f"a 4-qubit bus connects 3 or 4 qubits (corner case), got {self.qubits}"
            )
        if self.bus_type is BusType.FOUR_QUBIT and self.square is None:
            raise ValueError("a 4-qubit bus must record the lattice square it occupies")

    @property
    def coupled_pairs(self) -> List[Tuple[int, int]]:
        """Every qubit pair the bus allows two-qubit gates on.

        A 2-qubit bus supports its single pair.  A 4-qubit bus supports all
        pairs among its qubits — the four side pairs plus the two diagonals
        (paper Figure 2).
        """
        return [tuple(pair) for pair in combinations(self.qubits, 2)]

    @property
    def num_qubits(self) -> int:
        return len(self.qubits)


def two_qubit_bus(qubit_a: int, qubit_b: int) -> Bus:
    """Convenience constructor for a 2-qubit bus."""
    return Bus(BusType.TWO_QUBIT, (qubit_a, qubit_b))


def four_qubit_bus(qubits: Tuple[int, ...], square: Square) -> Bus:
    """Convenience constructor for a 4-qubit (or degenerate 3-qubit) bus."""
    return Bus(BusType.FOUR_QUBIT, tuple(qubits), square)
