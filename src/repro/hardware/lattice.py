"""2D lattice geometry.

Qubits live on integer lattice nodes ``(x, y)``.  Two nodes are adjacent
when their Manhattan distance is 1.  A *square* is the unit cell whose
lower-left corner is ``(x, y)``; squares are where 4-qubit buses may be
placed (paper Section 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

Coordinate = Tuple[int, int]


def manhattan_distance(a: Coordinate, b: Coordinate) -> int:
    """Manhattan (L1) distance between two lattice nodes."""
    return abs(a[0] - b[0]) + abs(a[1] - b[1])


def node_neighbors(node: Coordinate) -> List[Coordinate]:
    """The four lattice nodes adjacent to ``node`` (E, W, N, S)."""
    x, y = node
    return [(x + 1, y), (x - 1, y), (x, y + 1), (x, y - 1)]


@dataclass(frozen=True)
class Square:
    """The unit lattice cell with lower-left corner ``origin``.

    The four corner nodes are (x, y), (x+1, y), (x, y+1), (x+1, y+1).
    """

    origin: Coordinate

    @property
    def corners(self) -> Tuple[Coordinate, Coordinate, Coordinate, Coordinate]:
        x, y = self.origin
        return ((x, y), (x + 1, y), (x, y + 1), (x + 1, y + 1))

    @property
    def diagonals(self) -> Tuple[Tuple[Coordinate, Coordinate], Tuple[Coordinate, Coordinate]]:
        """The two diagonal corner pairs of the square."""
        x, y = self.origin
        return (((x, y), (x + 1, y + 1)), ((x + 1, y), (x, y + 1)))

    @property
    def edges(self) -> Tuple[Tuple[Coordinate, Coordinate], ...]:
        """The four side edges of the square."""
        x, y = self.origin
        return (
            ((x, y), (x + 1, y)),
            ((x, y), (x, y + 1)),
            ((x + 1, y), (x + 1, y + 1)),
            ((x, y + 1), (x + 1, y + 1)),
        )

    def neighbors(self) -> List["Square"]:
        """The four squares sharing an edge with this one (prohibition constraint)."""
        x, y = self.origin
        return [Square((x + 1, y)), Square((x - 1, y)), Square((x, y + 1)), Square((x, y - 1))]

    def is_adjacent_to(self, other: "Square") -> bool:
        return manhattan_distance(self.origin, other.origin) == 1


class Lattice:
    """A set of occupied nodes on the infinite 2D integer lattice.

    The design flow starts from an unbounded empty lattice (paper Figure 6
    (a)) and places qubits one by one, so this class does not impose any
    fixed width/height; it simply tracks which nodes are occupied and by
    which physical qubit.
    """

    def __init__(self) -> None:
        self._qubit_of_node: Dict[Coordinate, int] = {}
        self._node_of_qubit: Dict[int, Coordinate] = {}

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_coordinates(cls, coordinates: Dict[int, Coordinate]) -> "Lattice":
        """Build a lattice from a qubit -> node mapping."""
        lattice = cls()
        for qubit, node in coordinates.items():
            lattice.place(qubit, node)
        return lattice

    @classmethod
    def rectangle(cls, rows: int, cols: int) -> "Lattice":
        """A fully occupied ``rows x cols`` grid with row-major qubit ids.

        Qubit ``q`` sits at ``(x, y) = (q % cols, q // cols)``; this matches
        the regular layouts of IBM's 2x8 and 4x5 chips (paper Figure 9).
        """
        lattice = cls()
        for qubit in range(rows * cols):
            lattice.place(qubit, (qubit % cols, qubit // cols))
        return lattice

    def place(self, qubit: int, node: Coordinate) -> None:
        """Place ``qubit`` on ``node``; both must be unused."""
        node = (int(node[0]), int(node[1]))
        if node in self._qubit_of_node:
            raise ValueError(f"node {node} is already occupied by qubit {self._qubit_of_node[node]}")
        if qubit in self._node_of_qubit:
            raise ValueError(f"qubit {qubit} is already placed at {self._node_of_qubit[qubit]}")
        self._qubit_of_node[node] = qubit
        self._node_of_qubit[qubit] = node

    # -- queries ---------------------------------------------------------------

    @property
    def num_qubits(self) -> int:
        return len(self._node_of_qubit)

    @property
    def qubits(self) -> List[int]:
        return sorted(self._node_of_qubit)

    @property
    def occupied_nodes(self) -> Set[Coordinate]:
        return set(self._qubit_of_node)

    def coordinates(self) -> Dict[int, Coordinate]:
        """Copy of the qubit -> node mapping."""
        return dict(self._node_of_qubit)

    def node_of(self, qubit: int) -> Coordinate:
        return self._node_of_qubit[qubit]

    def qubit_at(self, node: Coordinate) -> Optional[int]:
        """The qubit occupying ``node``, or None when the node is empty."""
        return self._qubit_of_node.get(node)

    def is_occupied(self, node: Coordinate) -> bool:
        return node in self._qubit_of_node

    def neighbors_of_qubit(self, qubit: int) -> List[int]:
        """Physical qubits on lattice-adjacent nodes."""
        node = self._node_of_qubit[qubit]
        found = []
        for neighbor in node_neighbors(node):
            occupant = self._qubit_of_node.get(neighbor)
            if occupant is not None:
                found.append(occupant)
        return sorted(found)

    def adjacent_pairs(self) -> List[Tuple[int, int]]:
        """All qubit pairs sitting on lattice-adjacent nodes (candidate 2-qubit buses)."""
        pairs: Set[Tuple[int, int]] = set()
        for qubit, node in self._node_of_qubit.items():
            for neighbor in node_neighbors(node):
                occupant = self._qubit_of_node.get(neighbor)
                if occupant is not None:
                    pairs.add((min(qubit, occupant), max(qubit, occupant)))
        return sorted(pairs)

    def empty_frontier(self) -> List[Coordinate]:
        """Empty nodes adjacent to at least one occupied node (candidate placements)."""
        frontier: Set[Coordinate] = set()
        for node in self._qubit_of_node:
            for neighbor in node_neighbors(node):
                if neighbor not in self._qubit_of_node:
                    frontier.add(neighbor)
        return sorted(frontier)

    def squares(self, min_occupied: int = 3) -> List[Square]:
        """Squares whose corners contain at least ``min_occupied`` placed qubits.

        These are the candidate locations for 4-qubit buses.  A square with
        three occupied corners is the "corner case" of paper Figure 7 (b)
        where the bus degenerates to a 3-qubit bus.
        """
        candidates: Set[Coordinate] = set()
        for x, y in self._qubit_of_node:
            for origin in ((x, y), (x - 1, y), (x, y - 1), (x - 1, y - 1)):
                candidates.add(origin)
        result = []
        for origin in sorted(candidates):
            square = Square(origin)
            occupied = sum(1 for corner in square.corners if corner in self._qubit_of_node)
            if occupied >= min_occupied:
                result.append(square)
        return result

    def square_qubits(self, square: Square) -> List[int]:
        """The qubits occupying the corners of ``square`` (sorted)."""
        return sorted(
            self._qubit_of_node[corner]
            for corner in square.corners
            if corner in self._qubit_of_node
        )

    def bounding_box(self) -> Tuple[Coordinate, Coordinate]:
        """Lower-left and upper-right corners of the occupied region."""
        if not self._qubit_of_node:
            raise ValueError("empty lattice has no bounding box")
        xs = [node[0] for node in self._qubit_of_node]
        ys = [node[1] for node in self._qubit_of_node]
        return (min(xs), min(ys)), (max(xs), max(ys))

    def normalized(self) -> "Lattice":
        """A copy translated so the bounding box starts at (0, 0)."""
        (min_x, min_y), _ = self.bounding_box()
        return Lattice.from_coordinates(
            {q: (x - min_x, y - min_y) for q, (x, y) in self._node_of_qubit.items()}
        )

    def geometric_center(self) -> Tuple[float, float]:
        """Mean position of the occupied nodes (used by frequency allocation)."""
        if not self._node_of_qubit:
            raise ValueError("empty lattice has no center")
        xs = [node[0] for node in self._node_of_qubit.values()]
        ys = [node[1] for node in self._node_of_qubit.values()]
        return (sum(xs) / len(xs), sum(ys) / len(ys))

    def central_qubit(self) -> int:
        """The placed qubit closest to the geometric center (ties broken by id)."""
        cx, cy = self.geometric_center()
        return min(
            self._node_of_qubit,
            key=lambda q: (
                abs(self._node_of_qubit[q][0] - cx) + abs(self._node_of_qubit[q][1] - cy),
                q,
            ),
        )
