"""The :class:`Architecture` container: layout + buses + frequencies.

An architecture is the artifact produced by the design flow and consumed
by both the yield simulator (which needs the physical coupling graph and
the designed frequencies) and the qubit mapper (which needs the coupling
graph and the qubit coordinates).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

import networkx as nx

from repro.hardware.bus import Bus, BusType, four_qubit_bus, two_qubit_bus
from repro.hardware.lattice import Coordinate, Lattice, Square, manhattan_distance


@dataclass
class Architecture:
    """A complete superconducting quantum processor architecture design.

    Attributes:
        name: Human-readable identifier used in reports.
        lattice: Qubit placement on the 2D lattice.
        buses: The resonator buses connecting qubits.
        frequencies: Designed (pre-fabrication) frequency of each qubit in
            GHz.  May be empty for partially designed architectures (before
            the frequency-allocation subroutine has run).
        logical_to_physical: Optional pseudo-mapping from logical program
            qubits to physical qubits recorded by the layout subroutine; the
            mapper uses it as its initial mapping.
    """

    name: str
    lattice: Lattice
    buses: List[Bus] = field(default_factory=list)
    frequencies: Dict[int, float] = field(default_factory=dict)
    logical_to_physical: Dict[int, int] = field(default_factory=dict)

    # -- derived structure ----------------------------------------------------

    @property
    def num_qubits(self) -> int:
        return self.lattice.num_qubits

    @property
    def qubits(self) -> List[int]:
        return self.lattice.qubits

    def coordinates(self) -> Dict[int, Coordinate]:
        return self.lattice.coordinates()

    def coupling_edges(self) -> List[Tuple[int, int]]:
        """All physical qubit pairs that can host a two-qubit gate.

        Every pair coupled by any bus appears exactly once, as ``(a, b)``
        with ``a < b``.
        """
        edges: Set[Tuple[int, int]] = set()
        for bus in self.buses:
            for a, b in bus.coupled_pairs:
                edges.add((min(a, b), max(a, b)))
        return sorted(edges)

    def coupling_graph(self) -> nx.Graph:
        """The chip coupling graph (vertices = physical qubits, edges = couplings)."""
        graph = nx.Graph()
        graph.add_nodes_from(self.qubits)
        graph.add_edges_from(self.coupling_edges())
        return graph

    def num_connections(self) -> int:
        """Number of distinct coupled qubit pairs (hardware resource measure)."""
        return len(self.coupling_edges())

    def four_qubit_buses(self) -> List[Bus]:
        return [bus for bus in self.buses if bus.bus_type is BusType.FOUR_QUBIT]

    def two_qubit_buses(self) -> List[Bus]:
        return [bus for bus in self.buses if bus.bus_type is BusType.TWO_QUBIT]

    def degree(self, qubit: int) -> int:
        """Number of physical qubits directly coupled to ``qubit``."""
        return sum(1 for a, b in self.coupling_edges() if qubit in (a, b))

    def neighbors(self, qubit: int) -> List[int]:
        """Physical qubits directly coupled to ``qubit``."""
        found = set()
        for a, b in self.coupling_edges():
            if a == qubit:
                found.add(b)
            elif b == qubit:
                found.add(a)
        return sorted(found)

    # -- validation -----------------------------------------------------------

    def validate(self) -> List[str]:
        """Check physical constraints; return human-readable violations.

        Checks performed:

        * every bus qubit is a placed qubit;
        * 2-qubit buses connect lattice-adjacent qubits;
        * 4-qubit buses sit on a lattice square whose occupied corners are
          exactly the bus qubits;
        * no two 4-qubit buses occupy adjacent squares (the prohibited
          condition of paper Figure 7 (a));
        * frequencies, when present, cover every qubit.
        """
        problems: List[str] = []
        placed = set(self.qubits)
        coords = self.coordinates()
        for bus in self.buses:
            missing = [q for q in bus.qubits if q not in placed]
            if missing:
                problems.append(f"bus {bus.qubits} references unplaced qubits {missing}")
                continue
            if bus.bus_type is BusType.TWO_QUBIT:
                a, b = bus.qubits
                if manhattan_distance(coords[a], coords[b]) != 1:
                    problems.append(
                        f"2-qubit bus {bus.qubits} connects non-adjacent nodes "
                        f"{coords[a]} and {coords[b]}"
                    )
            else:
                expected = set(self.lattice.square_qubits(bus.square))
                if expected != set(bus.qubits):
                    problems.append(
                        f"4-qubit bus on square {bus.square.origin} connects {sorted(bus.qubits)} "
                        f"but the occupied corners are {sorted(expected)}"
                    )
        squares = [bus.square for bus in self.four_qubit_buses()]
        for i in range(len(squares)):
            for j in range(i + 1, len(squares)):
                if squares[i].is_adjacent_to(squares[j]):
                    problems.append(
                        f"4-qubit buses on adjacent squares {squares[i].origin} and "
                        f"{squares[j].origin} (prohibited condition)"
                    )
        if self.frequencies:
            missing_freq = [q for q in self.qubits if q not in self.frequencies]
            if missing_freq:
                problems.append(f"qubits without designed frequency: {missing_freq}")
        return problems

    def is_valid(self) -> bool:
        return not self.validate()

    # -- construction helpers ---------------------------------------------------

    @classmethod
    def from_layout(
        cls,
        name: str,
        lattice: Lattice,
        four_qubit_squares: Optional[Iterable[Square]] = None,
        frequencies: Optional[Dict[int, float]] = None,
        logical_to_physical: Optional[Dict[int, int]] = None,
    ) -> "Architecture":
        """Build an architecture from a qubit layout and a set of 4-qubit squares.

        2-qubit buses are generated on every lattice edge between occupied
        nodes, except edges that belong to a selected 4-qubit square (the
        4-qubit bus replaces them, paper Section 4.2).
        """
        selected = list(four_qubit_squares or [])
        replaced_pairs: Set[FrozenSet[int]] = set()
        buses: List[Bus] = []
        for square in selected:
            qubits = lattice.square_qubits(square)
            if len(qubits) < 3:
                raise ValueError(
                    f"square {square.origin} has only {len(qubits)} occupied corners; "
                    "a 4-qubit bus needs at least 3"
                )
            buses.append(four_qubit_bus(tuple(qubits), square))
            for node_a, node_b in square.edges:
                qubit_a = lattice.qubit_at(node_a)
                qubit_b = lattice.qubit_at(node_b)
                if qubit_a is not None and qubit_b is not None:
                    replaced_pairs.add(frozenset((qubit_a, qubit_b)))
        for qubit_a, qubit_b in lattice.adjacent_pairs():
            if frozenset((qubit_a, qubit_b)) not in replaced_pairs:
                buses.append(two_qubit_bus(qubit_a, qubit_b))
        return cls(
            name=name,
            lattice=lattice,
            buses=buses,
            frequencies=dict(frequencies or {}),
            logical_to_physical=dict(logical_to_physical or {}),
        )

    def with_frequencies(self, frequencies: Dict[int, float], name: Optional[str] = None
                         ) -> "Architecture":
        """A copy of this architecture with a different frequency plan."""
        return Architecture(
            name=name or self.name,
            lattice=self.lattice,
            buses=list(self.buses),
            frequencies=dict(frequencies),
            logical_to_physical=dict(self.logical_to_physical),
        )

    # -- collision bookkeeping used by the yield simulator -----------------------

    def collision_pairs(self) -> List[Tuple[int, int]]:
        """Connected qubit pairs checked against collision conditions 1-4."""
        return self.coupling_edges()

    def collision_triples(self) -> List[Tuple[int, int, int]]:
        """Triples ``(j, i, k)`` where ``i`` and ``k`` both couple to ``j``.

        These are the geometries checked against collision conditions 5-7
        (paper Figure 3, right).
        """
        adjacency: Dict[int, List[int]] = {q: self.neighbors(q) for q in self.qubits}
        triples: List[Tuple[int, int, int]] = []
        for j, neighbors in adjacency.items():
            for idx_a in range(len(neighbors)):
                for idx_b in range(idx_a + 1, len(neighbors)):
                    triples.append((j, neighbors[idx_a], neighbors[idx_b]))
        return triples

    # -- reporting ----------------------------------------------------------------

    def summary(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "num_qubits": self.num_qubits,
            "num_connections": self.num_connections(),
            "num_two_qubit_buses": len(self.two_qubit_buses()),
            "num_four_qubit_buses": len(self.four_qubit_buses()),
            "has_frequencies": bool(self.frequencies),
        }

    def __repr__(self) -> str:
        return (
            f"Architecture(name={self.name!r}, qubits={self.num_qubits}, "
            f"connections={self.num_connections()}, "
            f"four_qubit_buses={len(self.four_qubit_buses())})"
        )
