"""Qubit frequency schemes and physical constants (paper Sections 2.2, 4.3, 5.1).

All frequencies are expressed in GHz.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.hardware.lattice import Coordinate

#: Qubit anharmonicity delta = f12 - f01 for the typical transmon design
#: considered by the paper (Section 2.2): -340 MHz.
ANHARMONICITY_GHZ = -0.340

#: Allowed pre-fabrication frequency band (Section 4.3): 5.00 GHz to 5.34 GHz.
ALLOWED_FREQUENCY_MIN_GHZ = 5.00
ALLOWED_FREQUENCY_MAX_GHZ = 5.34

#: IBM's 5-frequency scheme values: an arithmetic progression from 5 GHz to
#: 5.27 GHz (Section 5.2, Figure 9).
FIVE_FREQUENCY_VALUES_GHZ: Tuple[float, ...] = (5.00, 5.0675, 5.135, 5.2025, 5.27)

#: Default fabrication precision sigma used in the paper's evaluation
#: (Section 5.1): 30 MHz.
DEFAULT_SIGMA_GHZ = 0.030

#: Frequency step used when enumerating candidate frequencies in the
#: frequency-allocation subroutine (Section 4.3): 0.01 GHz.
CANDIDATE_FREQUENCY_STEP_GHZ = 0.01


def candidate_frequencies(step_ghz: float = CANDIDATE_FREQUENCY_STEP_GHZ) -> np.ndarray:
    """Candidate pre-fabrication frequencies 5.00, 5.01, ..., 5.34 GHz."""
    if step_ghz <= 0:
        raise ValueError("frequency step must be positive")
    count = int(round((ALLOWED_FREQUENCY_MAX_GHZ - ALLOWED_FREQUENCY_MIN_GHZ) / step_ghz)) + 1
    return np.round(ALLOWED_FREQUENCY_MIN_GHZ + step_ghz * np.arange(count), 6)


def five_frequency_label(node: Coordinate) -> int:
    """IBM 5-frequency scheme label (0-4) for a lattice node.

    The arrangement reproduces Figure 9: along a row the label advances by
    one per column, and each row is offset by two relative to the row
    below, i.e. ``label = (x + 2 * y) mod 5``.
    """
    x, y = node
    return (x + 2 * y) % 5


def five_frequency_scheme(coordinates: Dict[int, Coordinate]) -> Dict[int, float]:
    """Assign IBM's 5-frequency scheme to a set of placed qubits.

    This is used both for the ``ibm`` baseline architectures and for the
    ``eff-5-freq`` ablation configuration, where the optimized layout keeps
    IBM's regular frequency pattern.
    """
    return {
        qubit: FIVE_FREQUENCY_VALUES_GHZ[five_frequency_label(node)]
        for qubit, node in coordinates.items()
    }


def middle_frequency() -> float:
    """The centre of the allowed band (starting point of Algorithm 3)."""
    return round((ALLOWED_FREQUENCY_MIN_GHZ + ALLOWED_FREQUENCY_MAX_GHZ) / 2.0, 6)


def validate_frequencies(frequencies: Dict[int, float]) -> List[str]:
    """Return a list of violations of the allowed frequency band (empty if valid)."""
    problems = []
    for qubit, freq in sorted(frequencies.items()):
        if not ALLOWED_FREQUENCY_MIN_GHZ - 1e-9 <= freq <= ALLOWED_FREQUENCY_MAX_GHZ + 1e-9:
            problems.append(
                f"qubit {qubit} frequency {freq:.4f} GHz outside allowed band "
                f"[{ALLOWED_FREQUENCY_MIN_GHZ}, {ALLOWED_FREQUENCY_MAX_GHZ}] GHz"
            )
    return problems
