"""Command-line interface: ``repro-design``.

Subcommands:

* ``profile <benchmark>`` — print the coupling strength matrix and the
  coupling degree list of a benchmark (paper Section 3).
* ``design <benchmark>`` — run the full design flow and print the
  generated architecture series with yield estimates.
* ``evaluate <benchmark> [...]`` — run the Figure 10 experiment for one or
  more benchmarks and print the data tables and ASCII Pareto plots.
* ``sweep <benchmark> [...]`` — the same experiment grid sharded across
  worker processes (``--jobs N``) with deterministic per-point seeds:
  results are byte-identical for every job count.
* ``list`` — list the available benchmarks.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.benchmarks.library import BENCHMARK_NAMES, benchmark_info, get_benchmark
from repro.persistence import BACKENDS, atomic_write_text, parse_store_path
from repro.collision.yield_simulator import YieldSimulator
from repro.design.frequency_allocation import ALLOCATION_STRATEGIES
from repro.design.flow import DesignFlow, DesignOptions
from repro.evaluation.configs import ExperimentConfig
from repro.evaluation.experiment import (
    DEFAULT_CONFIGS,
    EvaluationSettings,
    evaluate_benchmark,
)
from repro.evaluation.figures import format_figure10_table
from repro.evaluation.parallel import run_sweep
from repro.mapping import SabreParameters
from repro.profiling.profiler import profile_circuit
from repro.visualization.ascii_art import render_architecture, render_coupling_matrix
from repro.visualization.pareto_plot import render_pareto_scatter


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-design`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-design",
        description="Application-specific superconducting quantum processor architecture design",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available benchmarks")

    profile_parser = subparsers.add_parser("profile", help="profile a benchmark circuit")
    profile_parser.add_argument("benchmark", help="benchmark name (see 'list')")

    design_parser = subparsers.add_parser("design", help="run the design flow on a benchmark")
    design_parser.add_argument("benchmark", help="benchmark name (see 'list')")
    design_parser.add_argument(
        "--buses", type=int, default=None,
        help="maximum number of 4-qubit buses (default: full series)",
    )
    design_parser.add_argument(
        "--trials", type=int, default=10_000, help="Monte Carlo trials for yield estimation"
    )
    _add_allocation_strategy_argument(design_parser)
    _add_screening_argument(design_parser)

    evaluate_parser = subparsers.add_parser(
        "evaluate", help="run the Figure 10 experiment for benchmarks"
    )
    evaluate_parser.add_argument("benchmarks", nargs="+", help="benchmark names (see 'list')")
    evaluate_parser.add_argument("--trials", type=int, default=10_000)
    evaluate_parser.add_argument(
        "--plot", action="store_true", help="also print an ASCII Pareto scatter plot"
    )
    _add_router_arguments(evaluate_parser)
    _add_design_arguments(evaluate_parser)

    sweep_parser = subparsers.add_parser(
        "sweep",
        help="run the evaluation grid sharded across worker processes",
    )
    sweep_parser.add_argument("benchmarks", nargs="+", help="benchmark names (see 'list')")
    sweep_parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker process count (results are identical for any value)",
    )
    sweep_parser.add_argument("--trials", type=int, default=10_000)
    sweep_parser.add_argument(
        "--configs", nargs="+", default=None,
        choices=[config.value for config in ExperimentConfig],
        help="experiment configurations to sweep (default: all five)",
    )
    sweep_parser.add_argument(
        "--plot", action="store_true", help="also print an ASCII Pareto scatter plot"
    )
    sweep_parser.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="sweep checkpoint store: every completed generation/evaluation "
             "task is recorded into it, so an interrupted sweep can restart "
             "with --resume (any cache backend; see --cache-backend)",
    )
    sweep_parser.add_argument(
        "--resume", action="store_true",
        help="skip tasks already recorded in the --checkpoint store; the "
             "resumed sweep's output is byte-identical to an uninterrupted "
             "run for any --jobs count",
    )
    sweep_parser.add_argument(
        "--output", default=None, metavar="PATH",
        help="also write the sweep results as a deterministic JSON report "
             "(byte-identical for any --jobs count, resumed or not)",
    )
    _add_router_arguments(sweep_parser)
    _add_design_arguments(sweep_parser)
    return parser


def _add_router_arguments(parser: argparse.ArgumentParser) -> None:
    """Routing-engine knobs shared by ``evaluate`` and ``sweep``."""
    group = parser.add_argument_group("routing engine")
    group.add_argument(
        "--router-passes", type=int, default=1, metavar="N",
        help="bidirectional SABRE passes per routing (odd; 1 = forward only, "
             "3 = forward-backward-forward refinement)",
    )
    group.add_argument(
        "--router-restarts", type=int, default=1, metavar="K",
        help="best-of-K seeded restarts per routing (deterministic)",
    )
    group.add_argument(
        "--routing-cache", default=None, metavar="PATH",
        help="persisted routing-result cache (counts-only JSON): loaded "
             "before routing — by every worker, for sweeps — and refreshed "
             "after in-process runs, so routing work is reused across "
             "invocations",
    )


def _add_allocation_strategy_argument(target) -> None:
    """The Algorithm 3 strategy flag, defined once for every subcommand.

    ``--allocation-strategy`` is canonical; ``--alloc-strategy`` is kept
    as a compatible alias.  On ``evaluate``/``sweep`` the chosen strategy
    applies to the eff-full / eff-rd-bus configurations and stays
    byte-identical for any ``--jobs`` count.
    """
    target.add_argument(
        "--allocation-strategy", "--alloc-strategy", dest="allocation_strategy",
        default="bfs-greedy",
        choices=sorted(ALLOCATION_STRATEGIES),
        help="Algorithm 3 search strategy (default: the paper-exact bfs-greedy)",
    )


def _add_screening_argument(target) -> None:
    """The Algorithm 3 screening escape hatch, shared by several subcommands."""
    target.add_argument(
        "--no-screening", action="store_true",
        help="disable the exact interval-count screening engine inside "
             "Algorithm 3 (results are bit-identical either way; screening "
             "only changes how fast the cold path runs)",
    )


def _add_design_arguments(parser: argparse.ArgumentParser) -> None:
    """Design-engine knobs shared by ``evaluate`` and ``sweep``."""
    group = parser.add_argument_group("design engine")
    _add_allocation_strategy_argument(group)
    _add_screening_argument(group)
    group.add_argument(
        "--cache-stats", action="store_true",
        help="print a cache-aware session report (per-stage design-engine "
             "entries/hits/misses and routing-cache hit rates) after the "
             "results",
    )
    group.add_argument(
        "--design-cache", default=None, metavar="PATH",
        help="persisted design-stage cache (counts-only JSON of Algorithm 3 "
             "frequency plans): loaded before designing — by every worker, "
             "for sweeps — and merged back afterwards, so a warm session "
             "re-derives its architectures without any frequency search",
    )
    group.add_argument(
        "--local-trials", type=int, default=2000, metavar="N",
        help="Monte Carlo trials per candidate frequency inside Algorithm 3 "
             "(default: 2000, as in the paper)",
    )
    group.add_argument(
        "--cache-backend", default="auto", choices=("auto",) + BACKENDS,
        help="storage backend for --routing-cache / --design-cache / "
             "--checkpoint paths without an explicit json:/sharded:/sqlite: "
             "prefix (default: auto — sniff existing state, else single-file "
             "JSON)",
    )


def _router_parameters(args: argparse.Namespace) -> SabreParameters:
    try:
        return SabreParameters(passes=args.router_passes, restarts=args.router_restarts)
    except ValueError as error:
        print(f"repro-design: error: {error}", file=sys.stderr)
        raise SystemExit(2) from None


def _store_path(path: Optional[str], backend: str) -> Optional[str]:
    """Apply ``--cache-backend`` to a store path.

    An explicit ``json:`` / ``sharded:`` / ``sqlite:`` prefix on the path
    always wins; otherwise a non-``auto`` backend choice is encoded as
    that prefix, so it survives the trip through pickled
    ``EvaluationSettings`` into every worker process.
    """
    if path is None or backend == "auto":
        return path
    scheme, _ = parse_store_path(path)
    if scheme is not None:
        return path
    return f"{backend}:{path}"


def _evaluation_settings(args: argparse.Namespace) -> EvaluationSettings:
    """The shared ``EvaluationSettings`` of the evaluate/sweep subcommands."""
    backend = args.cache_backend
    return EvaluationSettings(
        yield_trials=args.trials,
        frequency_local_trials=args.local_trials,
        routing=_router_parameters(args),
        routing_cache_path=_store_path(args.routing_cache, backend),
        allocation_strategy=args.allocation_strategy,
        design_cache_path=_store_path(args.design_cache, backend),
        screening=not args.no_screening,
        checkpoint_path=_store_path(getattr(args, "checkpoint", None), backend),
        resume=getattr(args, "resume", False),
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of the ``repro-design`` console script."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "profile":
        return _cmd_profile(args.benchmark)
    if args.command == "design":
        return _cmd_design(args.benchmark, args.buses, args.trials, args.allocation_strategy,
                           screening=not args.no_screening)
    if args.command == "evaluate":
        return _cmd_evaluate(args.benchmarks, _evaluation_settings(args), args.plot,
                             cache_stats=args.cache_stats)
    if args.command == "sweep":
        if args.resume and not args.checkpoint:
            print("repro-design: error: --resume requires --checkpoint",
                  file=sys.stderr)
            return 2
        return _cmd_sweep(args.benchmarks, args.jobs, args.configs, args.plot,
                          _evaluation_settings(args), cache_stats=args.cache_stats,
                          output=args.output)
    return 2


def _cmd_list() -> int:
    for name in BENCHMARK_NAMES:
        info = benchmark_info(name)
        origin = "synthetic substitute" if info.synthetic else "exact construction"
        print(f"{name:<18} {info.num_qubits:>2} qubits  {info.domain:<22} ({origin})")
    return 0


def _cmd_profile(benchmark: str) -> int:
    circuit = get_benchmark(benchmark)
    profile = profile_circuit(circuit)
    print(f"benchmark: {circuit.name}  ({circuit.num_qubits} qubits, {len(circuit)} gates, "
          f"{circuit.num_two_qubit_gates} two-qubit gates)")
    print("\ncoupling strength matrix:")
    print(render_coupling_matrix(profile.strength_matrix))
    print("\ncoupling degree list (qubit, degree):")
    for qubit, degree in profile.degree_list:
        print(f"  q{qubit:<3} {degree}")
    return 0


def _cmd_design(benchmark: str, buses: Optional[int], trials: int,
                alloc_strategy: str = "bfs-greedy", screening: bool = True) -> int:
    circuit = get_benchmark(benchmark)
    flow = DesignFlow(circuit, DesignOptions(allocation_strategy=alloc_strategy,
                                             frequency_screening=screening))
    simulator = YieldSimulator(trials=trials, seed=7)
    architectures = (
        flow.design_series() if buses is None else [flow.design(max_four_qubit_buses=buses)]
    )
    for architecture in architectures:
        print(render_architecture(architecture))
        estimate = simulator.estimate(architecture)
        print(f"  estimated yield: {estimate.yield_rate:.4f} "
              f"(+- {estimate.standard_error():.4f}, {trials} trials)")
        print()
    return 0


def _print_result(result, plot: bool) -> None:
    print(format_figure10_table(result))
    if plot:
        print()
        print(render_pareto_scatter(result))
    print()


def _print_cache_stats(stats: dict, note: Optional[str] = None) -> None:
    """The ``--cache-stats`` session report, one line per cache/stage."""
    print("cache stats:")
    if not stats:
        print("  (no caches ran in this process)")
    for name in sorted(stats):
        values = stats[name]
        lookups = values["hits"] + values["misses"]
        rate = values["hits"] / lookups if lookups else 0.0
        print(
            f"  {name:<18} entries={values['entries']:<5} "
            f"hits={values['hits']:<6} misses={values['misses']:<6} "
            f"hit-rate={rate:.1%}"
        )
    if note:
        print(f"  note: {note}")


def _sweep_report(names: List[str], results: dict) -> str:
    """The ``sweep --output`` JSON report, deterministically serialized.

    Covers every field of every data point, in sweep enumeration order;
    the text is byte-identical for any ``--jobs`` count and for resumed
    vs. uninterrupted runs — the resume tests diff it directly.
    """
    import json

    report = {
        name: [
            {
                "benchmark": point.benchmark,
                "config": point.config.value,
                "architecture_name": point.architecture_name,
                "num_qubits": point.num_qubits,
                "num_connections": point.num_connections,
                "num_four_qubit_buses": point.num_four_qubit_buses,
                "yield_rate": point.yield_rate,
                "total_gates": point.total_gates,
                "num_swaps": point.num_swaps,
                "normalized_reciprocal_gates": point.normalized_reciprocal_gates,
            }
            for point in results[name].points
        ]
        for name in names
    }
    return json.dumps(report, indent=2, sort_keys=True) + "\n"


def _cmd_sweep(
    benchmarks: List[str],
    jobs: int,
    config_values: Optional[List[str]],
    plot: bool,
    settings: EvaluationSettings,
    cache_stats: bool = False,
    output: Optional[str] = None,
) -> int:
    from repro.evaluation.parallel import save_worker_routing_cache, worker_cache_stats

    # Canonicalize up front: fails fast on unknown names (before forking
    # workers) and collapses aliases/duplicates onto the sweep's keys.
    names = list(dict.fromkeys(get_benchmark(name).name for name in benchmarks))
    configs = (
        tuple(ExperimentConfig(value) for value in config_values)
        if config_values
        else DEFAULT_CONFIGS
    )
    results = run_sweep(names, jobs=jobs, settings=settings, configs=configs)
    # Both caches merge from inside the workers after every task, so the
    # files are complete for every --jobs count; this final call only
    # rewrites if an in-process engine somehow still holds unmerged
    # results (it skips the file entirely otherwise).
    save_worker_routing_cache(settings)
    if output:
        atomic_write_text(output, _sweep_report(names, results))
    for name in names:
        _print_result(results[name], plot)
    if cache_stats:
        _print_cache_stats(
            worker_cache_stats(settings),
            note=(
                f"--jobs {jobs} ran its engines in worker processes; "
                "per-worker counters are not aggregated here"
            ) if jobs > 1 else None,
        )
    return 0


def _cmd_evaluate(benchmarks: List[str], settings: EvaluationSettings,
                  plot: bool, cache_stats: bool = False) -> int:
    from repro.evaluation.experiment import design_engine_for
    from repro.mapping import RoutingEngine

    # One engine of each kind across benchmarks: the IBM baselines repeat,
    # so their routers/distance matrices are built once per invocation, and
    # design stages shared between benchmarks are computed once.
    engine = RoutingEngine(settings.routing)
    if settings.routing_cache_path:
        engine.cache.load(settings.routing_cache_path, missing_ok=True)
    design_engine = design_engine_for(settings)
    routing_misses = engine.cache.misses
    design_misses = design_engine.frequency_cache.misses
    for name in benchmarks:
        circuit = get_benchmark(name)
        _print_result(evaluate_benchmark(circuit, settings=settings, engine=engine,
                                         design_engine=design_engine), plot)
    # Locked file-level merges: a concurrent writer's (or an earlier
    # run's) entries are never dropped by the refresh, and fully warm
    # runs (no new cache misses) skip the rewrite entirely.
    if settings.routing_cache_path and engine.cache.misses > routing_misses:
        engine.cache.merge_save(settings.routing_cache_path)
    if settings.design_cache_path and \
            design_engine.frequency_cache.misses > design_misses:
        design_engine.frequency_cache.merge_save(settings.design_cache_path)
    if cache_stats:
        stats = {"routing": engine.cache.stats()}
        stats.update(
            (f"design/{stage}", values)
            for stage, values in design_engine.stats().items()
        )
        _print_cache_stats(stats)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
