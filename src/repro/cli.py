"""Command-line interface: ``repro-design``.

Subcommands:

* ``profile <benchmark>`` — print the coupling strength matrix and the
  coupling degree list of a benchmark (paper Section 3).
* ``design <benchmark>`` — run the full design flow and print the
  generated architecture series with yield estimates.
* ``evaluate <benchmark> [...]`` — run the Figure 10 experiment for one or
  more benchmarks and print the data tables and ASCII Pareto plots.
* ``sweep <benchmark> [...]`` — the same experiment grid sharded across
  worker processes (``--jobs N``) with deterministic per-point seeds:
  results are byte-identical for every job count.
* ``cache migrate <src> <dst>`` — copy a persisted cache store (routing
  cache, design cache, or sweep checkpoint) to another backend.
* ``list`` — list the available benchmarks.

The ``evaluate`` and ``sweep`` subcommands resolve their flags into one
frozen :class:`~repro.runtime.config.RuntimeConfig` (optionally seeded
from a ``--runtime-config`` JSON file) and run on the process's
:class:`~repro.runtime.session.Session` for that config; ``--metrics-out``
writes the merged structured metrics report of the invocation.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
from typing import List, Optional, Sequence

from repro.benchmarks.library import BENCHMARK_NAMES, benchmark_info, get_benchmark
from repro.persistence import BACKENDS, atomic_write_text, parse_store_path
from repro.collision.yield_simulator import YieldSimulator
from repro.design.frequency_allocation import ALLOCATION_STRATEGIES
from repro.design.flow import DesignFlow, DesignOptions
from repro.evaluation.configs import ExperimentConfig
from repro.evaluation.experiment import DEFAULT_CONFIGS, DEFAULT_EVALUATION_ROUTING
from repro.evaluation.figures import format_figure10_table
from repro.evaluation.parallel import run_sweep
from repro.profiling.profiler import profile_circuit
from repro.runtime.config import RuntimeConfig
from repro.visualization.ascii_art import render_architecture, render_coupling_matrix
from repro.visualization.pareto_plot import render_pareto_scatter

#: Parser defaults for the flags that can override a ``--runtime-config``
#: JSON file.  A flag spelled at exactly its default is treated as "not
#: given" and cannot override the file (see :func:`_runtime_config`).
_TRIALS_DEFAULT = 10_000
_LOCAL_TRIALS_DEFAULT = 2000
_ROUTER_RESTARTS_DEFAULT = 1
_ALLOCATION_STRATEGY_DEFAULT = "bfs-greedy"


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-design`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-design",
        description="Application-specific superconducting quantum processor architecture design",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available benchmarks")

    profile_parser = subparsers.add_parser("profile", help="profile a benchmark circuit")
    profile_parser.add_argument("benchmark", help="benchmark name (see 'list')")

    design_parser = subparsers.add_parser("design", help="run the design flow on a benchmark")
    design_parser.add_argument("benchmark", help="benchmark name (see 'list')")
    design_parser.add_argument(
        "--buses", type=int, default=None,
        help="maximum number of 4-qubit buses (default: full series)",
    )
    design_parser.add_argument(
        "--trials", type=int, default=10_000, help="Monte Carlo trials for yield estimation"
    )
    _add_allocation_strategy_argument(design_parser)
    _add_screening_argument(design_parser)

    evaluate_parser = subparsers.add_parser(
        "evaluate", help="run the Figure 10 experiment for benchmarks"
    )
    evaluate_parser.add_argument("benchmarks", nargs="+", help="benchmark names (see 'list')")
    evaluate_parser.add_argument("--trials", type=int, default=_TRIALS_DEFAULT)
    evaluate_parser.add_argument(
        "--plot", action="store_true", help="also print an ASCII Pareto scatter plot"
    )
    _add_router_arguments(evaluate_parser)
    _add_design_arguments(evaluate_parser)
    _add_runtime_arguments(evaluate_parser)

    sweep_parser = subparsers.add_parser(
        "sweep",
        help="run the evaluation grid sharded across worker processes",
    )
    sweep_parser.add_argument("benchmarks", nargs="+", help="benchmark names (see 'list')")
    sweep_parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker process count (results are identical for any value)",
    )
    sweep_parser.add_argument("--trials", type=int, default=_TRIALS_DEFAULT)
    sweep_parser.add_argument(
        "--configs", nargs="+", default=None,
        choices=[config.value for config in ExperimentConfig],
        help="experiment configurations to sweep (default: all five)",
    )
    sweep_parser.add_argument(
        "--plot", action="store_true", help="also print an ASCII Pareto scatter plot"
    )
    sweep_parser.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="sweep checkpoint store: every completed generation/evaluation "
             "task is recorded into it, so an interrupted sweep can restart "
             "with --resume (any cache backend; see --cache-backend)",
    )
    sweep_parser.add_argument(
        "--resume", action="store_true",
        help="skip tasks already recorded in the --checkpoint store; the "
             "resumed sweep's output is byte-identical to an uninterrupted "
             "run for any --jobs count",
    )
    sweep_parser.add_argument(
        "--output", default=None, metavar="PATH",
        help="also write the sweep results as a deterministic JSON report "
             "(byte-identical for any --jobs count, resumed or not)",
    )
    supervision = sweep_parser.add_argument_group(
        "supervision",
        "fault-tolerant execution: supervised workers with heartbeats, "
        "deadlines, bounded retry, and poison-task quarantine.  Any of "
        "these flags enables supervision; none of them can change sweep "
        "values (retries re-derive the same content-addressed seeds)",
    )
    supervision.add_argument(
        "--supervised", action="store_true",
        help="run tasks in supervised worker processes: dead workers are "
             "replaced, failed tasks retried with deterministic backoff, "
             "and tasks that keep killing their worker are quarantined "
             "instead of killing the sweep",
    )
    supervision.add_argument(
        "--task-deadline", type=float, default=None, metavar="SECONDS",
        help="kill and retry any task attempt running longer than this",
    )
    supervision.add_argument(
        "--heartbeat-timeout", type=float, default=None, metavar="SECONDS",
        help="kill and retry a task whose worker has not heartbeat for "
             "this long (catches hangs that hold the GIL)",
    )
    supervision.add_argument(
        "--max-task-retries", type=int, default=2, metavar="N",
        help="retries after a task's first failed attempt before it is "
             "quarantined (default: 2)",
    )
    supervision.add_argument(
        "--retry-backoff", type=float, default=0.05, metavar="SECONDS",
        help="base of the deterministic exponential retry backoff "
             "(default: 0.05)",
    )
    supervision.add_argument(
        "--fault-plan", default=None, metavar="PATH",
        help="arm a deterministic fault-injection schedule (JSON; see "
             "repro.faults) in this process and every worker — testing "
             "only; implies --supervised",
    )
    supervision.add_argument(
        "--failures-out", default=None, metavar="PATH",
        help="write the quarantined-task report as JSON (written even "
             "when empty, so automation can rely on the file)",
    )
    _add_router_arguments(sweep_parser)
    _add_design_arguments(sweep_parser)
    _add_runtime_arguments(sweep_parser)

    cache_parser = subparsers.add_parser(
        "cache", help="maintenance of persisted cache stores"
    )
    cache_subparsers = cache_parser.add_subparsers(dest="cache_command", required=True)
    migrate_parser = cache_subparsers.add_parser(
        "migrate",
        help="copy a cache store (routing cache, design cache, or sweep "
             "checkpoint) into another backend",
    )
    migrate_parser.add_argument(
        "source", help="existing store to read (backend sniffed or prefixed)"
    )
    migrate_parser.add_argument(
        "dest", help="store to (re)write with the source's full entry list"
    )
    migrate_parser.add_argument(
        "--cache-backend", default="auto", choices=("auto",) + BACKENDS,
        help="backend for an unprefixed DEST path (default: auto — sniff "
             "existing state, else single-file JSON)",
    )

    lint_parser = subparsers.add_parser(
        "lint",
        help="run the invariant linter (determinism, store discipline, "
             "digest completeness, fork safety)",
    )
    lint_parser.add_argument(
        "targets", nargs="*", default=None,
        help="files or directories to lint (default: src benchmarks examples)",
    )
    lint_parser.add_argument(
        "--root", default=".",
        help="repository root (baseline and rule exemptions resolve against it)",
    )
    lint_parser.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="accepted-findings file (default: <root>/lint-baseline.json)",
    )
    lint_parser.add_argument(
        "--report", default=None, metavar="PATH",
        help="write the full disposition as deterministic JSON",
    )
    lint_parser.add_argument(
        "--no-dynamic", action="store_true",
        help="skip the dynamic digest-completeness checks (REPRO-C3xx)",
    )
    lint_parser.add_argument(
        "--update-baseline", action="store_true",
        help="accept every current finding into the baseline with a TODO "
             "justification",
    )
    lint_parser.add_argument(
        "--list-rules", action="store_true", help="list rule codes and exit",
    )
    return parser


def _add_router_arguments(parser: argparse.ArgumentParser) -> None:
    """Routing-engine knobs shared by ``evaluate`` and ``sweep``."""
    group = parser.add_argument_group("routing engine")
    group.add_argument(
        "--router-passes", type=int, default=DEFAULT_EVALUATION_ROUTING.passes,
        metavar="N",
        help="bidirectional SABRE passes per routing (odd; 1 = forward only, "
             "3 = forward-backward-forward refinement; default: "
             f"{DEFAULT_EVALUATION_ROUTING.passes})",
    )
    group.add_argument(
        "--router-restarts", type=int, default=_ROUTER_RESTARTS_DEFAULT,
        metavar="K",
        help="best-of-K seeded restarts per routing (deterministic)",
    )
    group.add_argument(
        "--routing-cache", default=None, metavar="PATH",
        help="persisted routing-result cache (counts-only JSON): loaded "
             "before routing — by every worker, for sweeps — and refreshed "
             "after in-process runs, so routing work is reused across "
             "invocations",
    )


def _add_allocation_strategy_argument(target) -> None:
    """The Algorithm 3 strategy flag, defined once for every subcommand.

    ``--allocation-strategy`` is canonical; ``--alloc-strategy`` is kept
    as a compatible alias.  On ``evaluate``/``sweep`` the chosen strategy
    applies to the eff-full / eff-rd-bus configurations and stays
    byte-identical for any ``--jobs`` count.
    """
    target.add_argument(
        "--allocation-strategy", "--alloc-strategy", dest="allocation_strategy",
        default=_ALLOCATION_STRATEGY_DEFAULT,
        choices=sorted(ALLOCATION_STRATEGIES),
        help="Algorithm 3 search strategy (default: the paper-exact bfs-greedy)",
    )


def _add_screening_argument(target) -> None:
    """The Algorithm 3 screening escape hatch, shared by several subcommands."""
    target.add_argument(
        "--no-screening", action="store_true",
        help="disable the exact interval-count screening engine inside "
             "Algorithm 3 (results are bit-identical either way; screening "
             "only changes how fast the cold path runs)",
    )


def _add_design_arguments(parser: argparse.ArgumentParser) -> None:
    """Design-engine knobs shared by ``evaluate`` and ``sweep``."""
    group = parser.add_argument_group("design engine")
    _add_allocation_strategy_argument(group)
    _add_screening_argument(group)
    group.add_argument(
        "--cache-stats", action="store_true",
        help="print a cache-aware session report (per-stage design-engine "
             "entries/hits/misses and routing-cache hit rates) after the "
             "results (deprecated: --metrics-out emits the same counters "
             "and more as structured JSON)",
    )
    group.add_argument(
        "--design-cache", default=None, metavar="PATH",
        help="persisted design-stage cache (counts-only JSON of Algorithm 3 "
             "frequency plans): loaded before designing — by every worker, "
             "for sweeps — and merged back afterwards, so a warm session "
             "re-derives its architectures without any frequency search",
    )
    group.add_argument(
        "--local-trials", type=int, default=_LOCAL_TRIALS_DEFAULT, metavar="N",
        help="Monte Carlo trials per candidate frequency inside Algorithm 3 "
             "(default: 2000, as in the paper)",
    )
    group.add_argument(
        "--cache-backend", default="auto", choices=("auto",) + BACKENDS,
        help="storage backend for --routing-cache / --design-cache / "
             "--checkpoint paths without an explicit json:/sharded:/sqlite: "
             "prefix (default: auto — sniff existing state, else single-file "
             "JSON)",
    )


def _add_runtime_arguments(parser: argparse.ArgumentParser) -> None:
    """Runtime-session knobs shared by ``evaluate`` and ``sweep``."""
    group = parser.add_argument_group("runtime session")
    group.add_argument(
        "--runtime-config", default=None, metavar="PATH",
        help="JSON file of RuntimeConfig fields to start from; precedence "
             "is built-in defaults < this file < flags spelled differently "
             "from their parser defaults",
    )
    group.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write the invocation's merged structured metrics report "
             "(versioned JSON: per-stage cache counters, screening prune "
             "fractions, routing swap counts, Monte Carlo call counts, and "
             "wall-time timers, aggregated across all workers) to PATH",
    )


def _store_path(path: Optional[str], backend: str) -> Optional[str]:
    """Apply ``--cache-backend`` to a store path.

    An explicit ``json:`` / ``sharded:`` / ``sqlite:`` prefix on the path
    always wins; otherwise a non-``auto`` backend choice is encoded as
    that prefix, so it survives the trip through pickled
    ``EvaluationSettings`` into every worker process.
    """
    if path is None or backend == "auto":
        return path
    scheme, _ = parse_store_path(path)
    if scheme is not None:
        return path
    return f"{backend}:{path}"


def _runtime_config(args: argparse.Namespace) -> RuntimeConfig:
    """Resolve one frozen ``RuntimeConfig`` for an evaluate/sweep invocation.

    Precedence: built-in defaults < the ``--runtime-config`` JSON file <
    CLI flags spelled differently from their parser defaults.  (A flag
    given at exactly its default value is indistinguishable from an
    omitted one and cannot override the file.)  Invalid combinations —
    even router passes, an unreadable config file — exit with status 2.
    """
    try:
        config = (
            RuntimeConfig.from_json(args.runtime_config)
            if getattr(args, "runtime_config", None)
            else RuntimeConfig()
        )
        routing = config.routing
        if args.router_passes != DEFAULT_EVALUATION_ROUTING.passes:
            routing = dataclasses.replace(routing, passes=args.router_passes)
        if args.router_restarts != _ROUTER_RESTARTS_DEFAULT:
            routing = dataclasses.replace(routing, restarts=args.router_restarts)
        updates = {}
        if routing != config.routing:
            updates["routing"] = routing
        if args.trials != _TRIALS_DEFAULT:
            updates["yield_trials"] = args.trials
        if args.local_trials != _LOCAL_TRIALS_DEFAULT:
            updates["frequency_local_trials"] = args.local_trials
        if args.allocation_strategy != _ALLOCATION_STRATEGY_DEFAULT:
            updates["allocation_strategy"] = args.allocation_strategy
        if args.no_screening:
            updates["screening"] = False
        for flag, field in (("routing_cache", "routing_cache_path"),
                            ("design_cache", "design_cache_path"),
                            ("checkpoint", "checkpoint_path")):
            value = getattr(args, flag, None)
            if value is not None:
                updates[field] = value
        if getattr(args, "resume", False):
            updates["resume"] = True
        # --cache-backend applies to every unprefixed store path, whether
        # it came from a flag or from the config file.
        backend = args.cache_backend
        for field in ("routing_cache_path", "design_cache_path", "checkpoint_path"):
            value = updates.get(field, getattr(config, field))
            prefixed = _store_path(value, backend)
            if prefixed != value:
                updates[field] = prefixed
        if updates:
            config = dataclasses.replace(config, **updates)
    except (OSError, ValueError) as error:
        print(f"repro-design: error: {error}", file=sys.stderr)
        raise SystemExit(2) from None
    return config


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of the ``repro-design`` console script."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "profile":
        return _cmd_profile(args.benchmark)
    if args.command == "design":
        return _cmd_design(args.benchmark, args.buses, args.trials, args.allocation_strategy,
                           screening=not args.no_screening)
    if args.command == "evaluate":
        return _cmd_evaluate(args.benchmarks, _runtime_config(args), args.plot,
                             cache_stats=args.cache_stats,
                             metrics_out=args.metrics_out)
    if args.command == "sweep":
        if args.resume and not (args.checkpoint or args.runtime_config):
            print("repro-design: error: --resume requires --checkpoint",
                  file=sys.stderr)
            return 2
        return _cmd_sweep(args.benchmarks, args.jobs, args.configs, args.plot,
                          _runtime_config(args), cache_stats=args.cache_stats,
                          output=args.output, metrics_out=args.metrics_out,
                          supervised=args.supervised,
                          task_deadline=args.task_deadline,
                          heartbeat_timeout=args.heartbeat_timeout,
                          max_task_retries=args.max_task_retries,
                          retry_backoff=args.retry_backoff,
                          fault_plan=args.fault_plan,
                          failures_out=args.failures_out)
    if args.command == "cache":
        return _cmd_cache_migrate(args.source, args.dest, args.cache_backend)
    if args.command == "lint":
        return _cmd_lint(args)
    return 2


def _cmd_lint(args) -> int:
    """Forward ``repro lint`` to the :mod:`repro.analysis` runner."""
    from repro.analysis.runner import main as lint_main

    argv = list(args.targets or [])
    argv += ["--root", args.root]
    if args.baseline:
        argv += ["--baseline", args.baseline]
    if args.report:
        argv += ["--report", args.report]
    if args.no_dynamic:
        argv.append("--no-dynamic")
    if args.update_baseline:
        argv.append("--update-baseline")
    if args.list_rules:
        argv.append("--list-rules")
    return lint_main(argv)


def _cmd_list() -> int:
    for name in BENCHMARK_NAMES:
        info = benchmark_info(name)
        origin = "synthetic substitute" if info.synthetic else "exact construction"
        print(f"{name:<18} {info.num_qubits:>2} qubits  {info.domain:<22} ({origin})")
    return 0


def _cmd_profile(benchmark: str) -> int:
    circuit = get_benchmark(benchmark)
    profile = profile_circuit(circuit)
    print(f"benchmark: {circuit.name}  ({circuit.num_qubits} qubits, {len(circuit)} gates, "
          f"{circuit.num_two_qubit_gates} two-qubit gates)")
    print("\ncoupling strength matrix:")
    print(render_coupling_matrix(profile.strength_matrix))
    print("\ncoupling degree list (qubit, degree):")
    for qubit, degree in profile.degree_list:
        print(f"  q{qubit:<3} {degree}")
    return 0


def _cmd_design(benchmark: str, buses: Optional[int], trials: int,
                alloc_strategy: str = "bfs-greedy", screening: bool = True) -> int:
    circuit = get_benchmark(benchmark)
    flow = DesignFlow(circuit, DesignOptions(allocation_strategy=alloc_strategy,
                                             frequency_screening=screening))
    simulator = YieldSimulator(trials=trials, seed=7)
    architectures = (
        flow.design_series() if buses is None else [flow.design(max_four_qubit_buses=buses)]
    )
    for architecture in architectures:
        print(render_architecture(architecture))
        estimate = simulator.estimate(architecture)
        print(f"  estimated yield: {estimate.yield_rate:.4f} "
              f"(+- {estimate.standard_error():.4f}, {trials} trials)")
        print()
    return 0


def _print_result(result, plot: bool) -> None:
    print(format_figure10_table(result))
    if plot:
        print()
        print(render_pareto_scatter(result))
    print()


def _print_cache_stats(stats: dict, note: Optional[str] = None) -> None:
    """The ``--cache-stats`` session report, one line per cache/stage."""
    print("cache stats:")
    if not stats:
        print("  (no caches ran in this process)")
    for name in sorted(stats):
        values = stats[name]
        lookups = values["hits"] + values["misses"]
        rate = values["hits"] / lookups if lookups else 0.0
        print(
            f"  {name:<18} entries={values['entries']:<5} "
            f"hits={values['hits']:<6} misses={values['misses']:<6} "
            f"hit-rate={rate:.1%}"
        )
    if note:
        print(f"  note: {note}")


def _sweep_report(names: List[str], results: dict) -> str:
    """The ``sweep --output`` JSON report, deterministically serialized.

    Covers every field of every data point, in sweep enumeration order;
    the text is byte-identical for any ``--jobs`` count and for resumed
    vs. uninterrupted runs — the resume tests diff it directly.
    """
    report = {
        name: [
            {
                "benchmark": point.benchmark,
                "config": point.config.value,
                "architecture_name": point.architecture_name,
                "num_qubits": point.num_qubits,
                "num_connections": point.num_connections,
                "num_four_qubit_buses": point.num_four_qubit_buses,
                "yield_rate": point.yield_rate,
                "total_gates": point.total_gates,
                "num_swaps": point.num_swaps,
                "normalized_reciprocal_gates": point.normalized_reciprocal_gates,
            }
            for point in results[name].points
        ]
        for name in names
    }
    return json.dumps(report, indent=2, sort_keys=True) + "\n"


def _write_metrics(path: str, baseline, *, command: str,
                   config: RuntimeConfig, jobs: int) -> None:
    """Emit the ``--metrics-out`` report: everything since ``baseline``.

    The global registry already holds the worker deltas (the sweep
    executor merges each task's snapshot diff back into the parent), so
    one diff against the command-start baseline covers every stage of
    every worker.
    """
    from repro.runtime.metrics import (
        diff_snapshots,
        global_metrics,
        metrics_report,
        write_metrics,
    )

    snapshot = diff_snapshots(global_metrics().snapshot(), baseline)
    write_metrics(path, metrics_report(
        snapshot, command=command, config_digest=config.digest(), jobs=jobs,
    ))


def _cmd_sweep(
    benchmarks: List[str],
    jobs: int,
    config_values: Optional[List[str]],
    plot: bool,
    config: RuntimeConfig,
    cache_stats: bool = False,
    output: Optional[str] = None,
    metrics_out: Optional[str] = None,
    supervised: bool = False,
    task_deadline: Optional[float] = None,
    heartbeat_timeout: Optional[float] = None,
    max_task_retries: int = 2,
    retry_backoff: float = 0.05,
    fault_plan: Optional[str] = None,
    failures_out: Optional[str] = None,
) -> int:
    from repro import faults
    from repro.evaluation.parallel import save_worker_routing_cache, worker_cache_stats
    from repro.runtime.metrics import global_metrics

    # Any supervision knob (or a fault plan, which only the supervised
    # executor survives) opts the sweep into supervised execution.
    supervised = bool(
        supervised or fault_plan or task_deadline is not None
        or heartbeat_timeout is not None or failures_out
    )
    baseline = global_metrics().snapshot()
    settings = config.evaluation_settings()
    # Canonicalize up front: fails fast on unknown names (before forking
    # workers) and collapses aliases/duplicates onto the sweep's keys.
    names = list(dict.fromkeys(get_benchmark(name).name for name in benchmarks))
    configs = (
        tuple(ExperimentConfig(value) for value in config_values)
        if config_values
        else DEFAULT_CONFIGS
    )
    previous_plan = os.environ.get(faults.FAULT_PLAN_ENV)
    if fault_plan:
        # Load eagerly: workers read the plan lazily at the first
        # injection site, where a missing/invalid file would surface as
        # an "error" failure on every task and quarantine the whole
        # sweep instead of failing here, before any work starts.
        faults.FaultPlan.load(fault_plan)
        # Arm via the environment so forked workers inherit the plan.
        os.environ[faults.FAULT_PLAN_ENV] = fault_plan
        faults.reset()
    executor = None
    try:
        if supervised:
            from repro.evaluation.supervisor import SupervisedExecutor, SupervisorPolicy

            policy = SupervisorPolicy(
                task_deadline_s=task_deadline,
                heartbeat_timeout_s=heartbeat_timeout,
                max_task_retries=max_task_retries,
                backoff_base_s=retry_backoff,
            )
            executor = SupervisedExecutor(
                settings=settings, configs=configs, jobs=jobs, policy=policy,
            )
            results = executor.run(names)
        else:
            results = run_sweep(names, jobs=jobs, settings=settings, configs=configs)
    finally:
        if fault_plan:
            if previous_plan is None:
                os.environ.pop(faults.FAULT_PLAN_ENV, None)
            else:
                os.environ[faults.FAULT_PLAN_ENV] = previous_plan
            faults.reset()
    # Both caches merge from inside the workers after every task, so the
    # files are complete for every --jobs count; this final call only
    # rewrites if an in-process engine somehow still holds unmerged
    # results (it skips the file entirely otherwise).
    save_worker_routing_cache(settings)
    if output:
        atomic_write_text(output, _sweep_report(names, results))
    for name in names:
        _print_result(results[name], plot)
    if cache_stats:
        _print_cache_stats(
            worker_cache_stats(settings),
            note=(
                f"--jobs {jobs} ran its engines in worker processes; "
                "per-worker counters are not aggregated here — "
                "--metrics-out reports merge them"
            ) if jobs > 1 else None,
        )
    if metrics_out:
        _write_metrics(metrics_out, baseline, command="sweep", config=config,
                       jobs=jobs)
    failures = executor.failures if executor is not None else []
    if failures_out and executor is not None:
        atomic_write_text(
            failures_out,
            json.dumps(executor.failure_report(), indent=2, sort_keys=True) + "\n",
        )
    if failures:
        print(
            f"repro-design: sweep completed with {len(failures)} quarantined "
            "task(s); their points are missing from the results above",
            file=sys.stderr,
        )
        for item in failures:
            where = item.benchmark + "/" + item.config + (
                f"#{item.arch_index}" if item.arch_index is not None else ""
            )
            reasons = ",".join(failure.reason for failure in item.failures)
            print(
                f"repro-design:   quarantined {item.task} task {where} "
                f"after {item.attempts} attempts ({reasons})",
                file=sys.stderr,
            )
        return 3
    return 0


def _cmd_evaluate(benchmarks: List[str], config: RuntimeConfig,
                  plot: bool, cache_stats: bool = False,
                  metrics_out: Optional[str] = None) -> int:
    from repro.runtime.metrics import global_metrics
    from repro.runtime.session import session_for

    # The process session owns one engine of each kind across benchmarks:
    # the IBM baselines repeat, so their routers/distance matrices are
    # built once, and design stages shared between benchmarks (or with
    # earlier in-process invocations of the same config) compute once.
    baseline = global_metrics().snapshot()
    session = session_for(config)
    for name in benchmarks:
        _print_result(session.evaluate(name), plot)
    # Locked file-level merges behind miss-count watermarks: a concurrent
    # writer's (or an earlier run's) entries are never dropped by the
    # refresh, and fully warm runs skip the rewrite entirely.
    session.persist()
    if cache_stats:
        _print_cache_stats(session.cache_stats())
    if metrics_out:
        _write_metrics(metrics_out, baseline, command="evaluate", config=config,
                       jobs=1)
    return 0


def _cmd_cache_migrate(source: str, dest: str, backend: str) -> int:
    """``repro-design cache migrate``: copy a store to another backend.

    The source's cache kind is detected by reading it under each known
    envelope in turn (routing cache, design cache, sweep checkpoint);
    every backend fails loud with :class:`WrongFormatError` on another
    kind's data, so the first successful read identifies the store.
    """
    from repro.design.engine import DesignCache
    from repro.evaluation.checkpoint import SweepCheckpoint
    from repro.mapping.engine import RoutingCache
    from repro.persistence import WrongFormatError, migrate_store, read_cache_entries

    kinds = (
        ("routing cache", RoutingCache.FORMAT, RoutingCache.VERSION,
         RoutingCache._record_key),
        ("design cache", DesignCache.FORMAT, DesignCache.VERSION,
         DesignCache._record_key),
        ("sweep checkpoint", SweepCheckpoint.FORMAT, SweepCheckpoint.VERSION,
         SweepCheckpoint._record_key),
    )
    dest = _store_path(dest, backend)
    for kind, file_format, version, key_of in kinds:
        try:
            entries = read_cache_entries(source, file_format, version, kind=kind)
        except FileNotFoundError:
            print(f"repro-design: error: cache store not found: {source}",
                  file=sys.stderr)
            return 2
        except (WrongFormatError, ValueError):
            continue
        if entries is None:
            continue
        count = migrate_store(source, dest, file_format, version, key_of,
                              kind=kind)
        print(f"migrated {count} {kind} entries: {source} -> {dest}")
        return 0
    print(f"repro-design: error: {source} is not a recognized cache store",
          file=sys.stderr)
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
