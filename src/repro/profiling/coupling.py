"""Coupling strength matrix and coupling degree list (paper Section 3.1).

These functions implement exactly the profiling procedure illustrated by
Figure 4 of the paper: single-qubit gates, initialization, and
measurements are ignored; each two-qubit gate adds one to the symmetric
coupling strength matrix; the coupling degree of a qubit is the sum of
the weights of its incident edges in the logical coupling graph.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import networkx as nx
import numpy as np

from repro.circuit.circuit import QuantumCircuit


def coupling_strength_matrix(circuit: QuantumCircuit) -> np.ndarray:
    """The symmetric matrix of two-qubit gate counts per logical qubit pair.

    Entry ``(i, j)`` is the number of two-qubit gate instances acting on
    logical qubits ``i`` and ``j`` (regardless of which is the control).
    The diagonal is zero.
    """
    n = circuit.num_qubits
    matrix = np.zeros((n, n), dtype=np.int64)
    for gate in circuit.gates:
        if gate.is_two_qubit:
            a, b = gate.qubits
            matrix[a, b] += 1
            matrix[b, a] += 1
    return matrix


def coupling_degrees(circuit: QuantumCircuit) -> np.ndarray:
    """Per-qubit coupling degree: total number of two-qubit gates on each qubit."""
    return coupling_strength_matrix(circuit).sum(axis=1)


def coupling_degree_list(circuit: QuantumCircuit) -> List[Tuple[int, int]]:
    """Qubits sorted by coupling degree, descending (paper Figure 4 (d)).

    Returns:
        A list of ``(qubit_index, coupling_degree)`` pairs.  Ties are broken
        by qubit index so the ordering is deterministic.
    """
    degrees = coupling_degrees(circuit)
    order = sorted(range(circuit.num_qubits), key=lambda q: (-int(degrees[q]), q))
    return [(q, int(degrees[q])) for q in order]


def coupling_graph(circuit: QuantumCircuit) -> nx.Graph:
    """The logical coupling graph (paper Figure 4 (b)).

    Vertices are logical qubits; an edge exists when at least one two-qubit
    gate acts on the pair, weighted by the number of such gates.  Qubits
    with no two-qubit gates still appear as isolated vertices.
    """
    matrix = coupling_strength_matrix(circuit)
    graph = nx.Graph()
    graph.add_nodes_from(range(circuit.num_qubits))
    for i in range(circuit.num_qubits):
        for j in range(i + 1, circuit.num_qubits):
            if matrix[i, j] > 0:
                graph.add_edge(i, j, weight=int(matrix[i, j]))
    return graph


def edge_weights(circuit: QuantumCircuit) -> Dict[Tuple[int, int], int]:
    """Dictionary of ``(i, j) -> weight`` with ``i < j`` for coupled pairs only."""
    matrix = coupling_strength_matrix(circuit)
    weights: Dict[Tuple[int, int], int] = {}
    for i in range(circuit.num_qubits):
        for j in range(i + 1, circuit.num_qubits):
            if matrix[i, j] > 0:
                weights[(i, j)] = int(matrix[i, j])
    return weights
