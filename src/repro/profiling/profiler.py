"""The profiler front end: one call extracting everything the design flow needs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import networkx as nx
import numpy as np

from repro.circuit.circuit import QuantumCircuit
from repro.profiling.coupling import (
    coupling_degree_list,
    coupling_graph,
    coupling_strength_matrix,
    edge_weights,
)


@dataclass
class CircuitProfile:
    """Profiling result consumed by the architecture design flow.

    Attributes:
        circuit_name: Name of the profiled circuit.
        num_qubits: Logical register size.
        strength_matrix: Symmetric matrix of two-qubit gate counts.
        degree_list: ``(qubit, degree)`` pairs in descending degree order.
        graph: The weighted logical coupling graph.
        num_two_qubit_gates: Total number of two-qubit gates.
        num_gates: Total gate count (including 1q gates and measurements).
    """

    circuit_name: str
    num_qubits: int
    strength_matrix: np.ndarray
    degree_list: List[Tuple[int, int]]
    graph: nx.Graph
    num_two_qubit_gates: int
    num_gates: int
    _edge_weights: Dict[Tuple[int, int], int] = field(default_factory=dict, repr=False)

    # -- convenience accessors -----------------------------------------------------

    def strength(self, qubit_a: int, qubit_b: int) -> int:
        """Number of two-qubit gates between the two logical qubits."""
        return int(self.strength_matrix[qubit_a, qubit_b])

    def degree(self, qubit: int) -> int:
        """Coupling degree of a qubit."""
        return int(self.strength_matrix[qubit].sum())

    def neighbors(self, qubit: int) -> List[int]:
        """Logical qubits sharing at least one two-qubit gate with ``qubit``."""
        return sorted(self.graph.neighbors(qubit))

    def coupled_pairs(self) -> List[Tuple[int, int]]:
        """All ``(i, j)`` with ``i < j`` having non-zero coupling strength."""
        return sorted(self._edge_weights)

    def edge_weight_map(self) -> Dict[Tuple[int, int], int]:
        """Copy of the coupled-pair weight dictionary."""
        return dict(self._edge_weights)

    @property
    def max_strength(self) -> int:
        """Largest pairwise coupling strength (0 for a circuit with no 2q gates)."""
        return int(self.strength_matrix.max()) if self.strength_matrix.size else 0

    def summary(self) -> Dict[str, object]:
        return {
            "circuit": self.circuit_name,
            "num_qubits": self.num_qubits,
            "num_gates": self.num_gates,
            "num_two_qubit_gates": self.num_two_qubit_gates,
            "num_coupled_pairs": len(self._edge_weights),
            "max_pair_strength": self.max_strength,
        }


def profile_circuit(circuit: QuantumCircuit) -> CircuitProfile:
    """Profile a circuit per paper Section 3.1.

    Single-qubit gates, initialization, and measurement operations are
    ignored; only the two-qubit gate structure is extracted.
    """
    matrix = coupling_strength_matrix(circuit)
    return CircuitProfile(
        circuit_name=circuit.name,
        num_qubits=circuit.num_qubits,
        strength_matrix=matrix,
        degree_list=coupling_degree_list(circuit),
        graph=coupling_graph(circuit),
        num_two_qubit_gates=circuit.num_two_qubit_gates,
        num_gates=len(circuit),
        _edge_weights=edge_weights(circuit),
    )
