"""Architecture-design-oriented program profiling (paper Section 3).

The profiler extracts the two quantities the design flow consumes:

* the **coupling strength matrix** — a symmetric ``n x n`` integer matrix
  whose ``(i, j)`` entry counts two-qubit gates between logical qubits
  ``i`` and ``j``;
* the **coupling degree list** — logical qubits sorted by the total
  number of two-qubit gates they participate in, in descending order.
"""

from repro.profiling.coupling import (
    coupling_degree_list,
    coupling_degrees,
    coupling_graph,
    coupling_strength_matrix,
)
from repro.profiling.profiler import CircuitProfile, profile_circuit
from repro.profiling.patterns import CouplingPattern, classify_pattern

__all__ = [
    "coupling_strength_matrix",
    "coupling_degrees",
    "coupling_degree_list",
    "coupling_graph",
    "CircuitProfile",
    "profile_circuit",
    "CouplingPattern",
    "classify_pattern",
]
