"""Coupling-pattern classification.

Section 3.2 of the paper observes that different program families exhibit
distinct two-qubit gate patterns — chains (UCCSD, Ising), uniform
all-to-all weights (QFT), and clustered/irregular patterns (reversible
arithmetic).  This module provides a lightweight classifier over the
coupling strength matrix.  The classification is not used by the design
flow itself (which consumes raw weights), but it powers reporting, the
special-case analysis of ``ising_model`` and ``qft`` in Section 5, and
several tests.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.profiling.profiler import CircuitProfile


class CouplingPattern(enum.Enum):
    """Qualitative shape of a program's logical coupling graph."""

    CHAIN = "chain"
    UNIFORM = "uniform"
    CLUSTERED = "clustered"
    SPARSE = "sparse"
    EMPTY = "empty"


def classify_pattern(profile: CircuitProfile) -> CouplingPattern:
    """Classify the coupling pattern of a profiled circuit.

    Rules (checked in order):

    * no two-qubit gates at all -> ``EMPTY``;
    * every coupled pair has identical strength and most pairs are coupled
      -> ``UNIFORM`` (the qft case);
    * the coupling graph is a path once weak edges are dropped -> ``CHAIN``
      (ising / UCCSD case);
    * fewer than half of the possible pairs are coupled -> ``SPARSE``;
    * otherwise -> ``CLUSTERED``.
    """
    matrix = profile.strength_matrix
    n = profile.num_qubits
    weights = matrix[np.triu_indices(n, k=1)]
    nonzero = weights[weights > 0]
    if nonzero.size == 0:
        return CouplingPattern.EMPTY

    total_pairs = n * (n - 1) // 2
    coupled_fraction = nonzero.size / total_pairs

    if np.all(nonzero == nonzero[0]) and coupled_fraction > 0.9:
        return CouplingPattern.UNIFORM

    if _strong_subgraph_is_path(matrix):
        return CouplingPattern.CHAIN

    if coupled_fraction < 0.5:
        return CouplingPattern.SPARSE
    return CouplingPattern.CLUSTERED


def _strong_subgraph_is_path(matrix: np.ndarray, strong_fraction: float = 0.5) -> bool:
    """True when the edges carrying most of the weight form a simple path.

    An edge is *strong* when its weight is at least ``strong_fraction`` of
    the maximum pairwise weight.  A path over ``n`` qubits has ``n - 1``
    strong edges, every vertex has strong-degree <= 2, and the strong
    subgraph is connected over the vertices it touches.
    """
    n = matrix.shape[0]
    threshold = matrix.max() * strong_fraction
    strong = matrix >= threshold
    np.fill_diagonal(strong, False)

    degrees = strong.sum(axis=1)
    touched = np.flatnonzero(degrees > 0)
    if touched.size == 0:
        return False
    if np.any(degrees > 2):
        return False
    num_edges = int(strong[np.triu_indices(n, k=1)].sum())
    if num_edges != touched.size - 1:
        return False
    # Connectivity check via BFS over the strong subgraph.
    visited = {int(touched[0])}
    frontier = [int(touched[0])]
    while frontier:
        current = frontier.pop()
        for neighbor in np.flatnonzero(strong[current]):
            neighbor = int(neighbor)
            if neighbor not in visited:
                visited.add(neighbor)
                frontier.append(neighbor)
    return len(visited) == touched.size
