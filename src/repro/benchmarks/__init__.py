"""The twelve evaluation benchmark programs (paper Section 5.1).

The paper draws its benchmarks from IBM QISKit, RevLib, and ScaffCC.  The
algorithmic benchmarks (QFT, the Ising-model Trotter step, the UCCSD VQE
ansatz) are fully specified algorithms and are generated exactly.  The
reversible-arithmetic benchmarks originate from RevLib circuit files that
are not redistributable here, so they are substituted by deterministic
synthetic reversible-logic circuits with the published qubit counts and
qualitatively matching coupling patterns — see DESIGN.md for the
substitution rationale.

Use :func:`get_benchmark` / :func:`benchmark_suite` to obtain circuits by
the names used in the paper's figures.
"""

from repro.benchmarks.qft import qft_circuit
from repro.benchmarks.ising import ising_model_circuit
from repro.benchmarks.uccsd import uccsd_ansatz_circuit
from repro.benchmarks.reversible import ReversibleSpec, reversible_circuit
from repro.benchmarks.library import (
    BENCHMARK_NAMES,
    BenchmarkInfo,
    benchmark_info,
    benchmark_suite,
    get_benchmark,
)

__all__ = [
    "qft_circuit",
    "ising_model_circuit",
    "uccsd_ansatz_circuit",
    "ReversibleSpec",
    "reversible_circuit",
    "BENCHMARK_NAMES",
    "BenchmarkInfo",
    "benchmark_info",
    "benchmark_suite",
    "get_benchmark",
]
