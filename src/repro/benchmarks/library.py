"""The benchmark library: the twelve programs of the paper's evaluation.

Every benchmark is identified by the exact name used in Figure 10.  The
qubit counts match the paper; the reversible-arithmetic circuits are
synthetic substitutes (see :mod:`repro.benchmarks.reversible` and
DESIGN.md) whose gate-count scale and coupling-pattern character follow
the originals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.circuit.circuit import QuantumCircuit
from repro.benchmarks.ising import ising_model_circuit
from repro.benchmarks.qft import qft_circuit
from repro.benchmarks.reversible import ReversibleSpec, reversible_circuit
from repro.benchmarks.uccsd import uccsd_ansatz_circuit


@dataclass(frozen=True)
class BenchmarkInfo:
    """Metadata for one benchmark program.

    Attributes:
        name: The name used in the paper's figures.
        num_qubits: Logical register size.
        domain: Application domain (reporting only).
        source: Where the paper obtained the original circuit.
        synthetic: True when this library substitutes a synthetic circuit.
    """

    name: str
    num_qubits: int
    domain: str
    source: str
    synthetic: bool


_REVERSIBLE_SPECS: Dict[str, ReversibleSpec] = {
    "adr4_197": ReversibleSpec(
        name="adr4_197", num_qubits=13, num_inputs=8, num_terms=110, max_controls=3,
        cluster_size=4,
    ),
    "radd_250": ReversibleSpec(
        name="radd_250", num_qubits=13, num_inputs=8, num_terms=100, max_controls=3,
        cluster_size=4,
    ),
    "rd84_142": ReversibleSpec(
        name="rd84_142", num_qubits=15, num_inputs=8, num_terms=105, max_controls=3,
        cluster_size=5,
    ),
    "misex1_241": ReversibleSpec(
        name="misex1_241", num_qubits=15, num_inputs=6, num_terms=140, max_controls=3,
        cluster_size=4,
    ),
    "square_root_7": ReversibleSpec(
        name="square_root_7", num_qubits=15, num_inputs=7, num_terms=120, max_controls=3,
        cluster_size=4,
    ),
    "cm152a_212": ReversibleSpec(
        name="cm152a_212", num_qubits=12, num_inputs=11, num_terms=80, max_controls=3,
        cluster_size=4,
    ),
    "dc1_220": ReversibleSpec(
        name="dc1_220", num_qubits=11, num_inputs=4, num_terms=90, max_controls=3,
        cluster_size=3,
    ),
    "z4_268": ReversibleSpec(
        name="z4_268", num_qubits=11, num_inputs=7, num_terms=95, max_controls=3,
        cluster_size=4,
    ),
    "sym6_145": ReversibleSpec(
        name="sym6_145", num_qubits=7, num_inputs=6, num_terms=90, max_controls=3,
        cluster_size=4,
    ),
}


_BENCHMARK_INFO: Dict[str, BenchmarkInfo] = {
    "adr4_197": BenchmarkInfo("adr4_197", 13, "arithmetic", "RevLib", True),
    "radd_250": BenchmarkInfo("radd_250", 13, "arithmetic", "RevLib", True),
    "rd84_142": BenchmarkInfo("rd84_142", 15, "arithmetic", "RevLib", True),
    "misex1_241": BenchmarkInfo("misex1_241", 15, "arithmetic", "RevLib", True),
    "square_root_7": BenchmarkInfo("square_root_7", 15, "arithmetic", "RevLib", True),
    "cm152a_212": BenchmarkInfo("cm152a_212", 12, "arithmetic", "RevLib", True),
    "dc1_220": BenchmarkInfo("dc1_220", 11, "arithmetic", "RevLib", True),
    "z4_268": BenchmarkInfo("z4_268", 11, "arithmetic", "RevLib", True),
    "sym6_145": BenchmarkInfo("sym6_145", 7, "symmetric function", "RevLib", True),
    "UCCSD_ansatz_8": BenchmarkInfo("UCCSD_ansatz_8", 8, "VQE / simulation", "QISKit", False),
    "ising_model_16": BenchmarkInfo("ising_model_16", 16, "simulation", "ScaffCC", False),
    "qft_16": BenchmarkInfo("qft_16", 16, "arithmetic / transform", "QISKit", False),
}

#: Benchmark names in the order used throughout the evaluation.
BENCHMARK_NAMES: Tuple[str, ...] = tuple(_BENCHMARK_INFO)


def _build(name: str) -> QuantumCircuit:
    """Synthesize the named benchmark, memoized, returning a caller-owned copy.

    Benchmark synthesis is deterministic but not free (the reversible
    substitutes decompose hundreds of multi-controlled gates), and sweep
    workers rebuild their circuit once per task.  The master circuit per
    name is built once per process; every caller receives a fresh copy,
    so mutating a returned circuit can never leak into later calls.
    """
    master = _MASTERS.get(name)
    if master is None:
        if name in _REVERSIBLE_SPECS:
            master = reversible_circuit(_REVERSIBLE_SPECS[name])
        elif name == "UCCSD_ansatz_8":
            master = uccsd_ansatz_circuit(8)
        elif name == "ising_model_16":
            master = ising_model_circuit(16)
        elif name == "qft_16":
            master = qft_circuit(16)
        else:
            raise KeyError(name)
        master.content_hash()  # warm the digest so every copy shares it
        _MASTERS[name] = master
    return master.copy()


_MASTERS: Dict[str, QuantumCircuit] = {}


def get_benchmark(name: str) -> QuantumCircuit:
    """Build the benchmark circuit with the given paper name.

    Names are case-insensitive; the canonical spellings are listed in
    :data:`BENCHMARK_NAMES`.
    """
    canonical = _canonical_name(name)
    return _build(canonical)


def benchmark_info(name: str) -> BenchmarkInfo:
    """Metadata for the named benchmark."""
    return _BENCHMARK_INFO[_canonical_name(name)]


def benchmark_suite(names: List[str] = None) -> Dict[str, QuantumCircuit]:
    """Build several benchmarks at once (all twelve by default)."""
    selected = [_canonical_name(n) for n in names] if names else list(BENCHMARK_NAMES)
    return {name: _build(name) for name in selected}


def _canonical_name(name: str) -> str:
    lowered = name.lower()
    for canonical in _BENCHMARK_INFO:
        if canonical.lower() == lowered:
            return canonical
    raise KeyError(
        f"unknown benchmark {name!r}; available benchmarks: {', '.join(BENCHMARK_NAMES)}"
    )
