"""Synthetic reversible-arithmetic benchmark circuits.

The paper's arithmetic benchmarks (adr4_197, rd84_142, misex1_241,
square_root_7, radd_250, cm152a_212, dc1_220, z4_268, sym6_145) are
RevLib functions synthesized into multi-controlled-Toffoli (MCT)
networks and then decomposed into the CNOT + single-qubit basis.  The
original RevLib circuit files are not redistributable inside this
repository, so this module *synthesizes* circuits with the same
character: an ESOP-style network of MCT gates whose controls are drawn
from a set of input qubits and whose targets are output/work qubits,
with per-output control affinities that produce the clustered, highly
non-uniform coupling patterns shown in the paper's Figure 5.

Every circuit is fully deterministic: the generator is seeded from the
benchmark name, so repeated calls (and repeated test runs) produce the
same circuit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.decompose import decompose_mcx
from repro.circuit.gates import cx, h, measure, x
from repro.utils.rng import deterministic_rng


@dataclass(frozen=True)
class ReversibleSpec:
    """Parameters of a synthetic reversible-logic benchmark.

    Attributes:
        name: Benchmark name (used for seeding and reporting).
        num_qubits: Total register size.
        num_inputs: Number of primary-input qubits; the remaining qubits act
            as outputs / work qubits and receive the MCT targets.
        num_terms: Number of MCT product terms in the ESOP-style network.
        max_controls: Largest number of controls per MCT gate (2 or 3).
        cluster_size: Number of input qubits each output draws its controls
            from (smaller values produce more clustered coupling patterns).
        use_ancilla: Whether 3-control MCTs may borrow a free qubit as a
            V-chain ancilla (reduces gate count, spreads coupling onto the
            ancilla qubit).
    """

    name: str
    num_qubits: int
    num_inputs: int
    num_terms: int
    max_controls: int = 3
    cluster_size: int = 4
    use_ancilla: bool = True

    def __post_init__(self) -> None:
        if self.num_inputs >= self.num_qubits:
            raise ValueError("a reversible benchmark needs at least one non-input qubit")
        if self.max_controls < 1:
            raise ValueError("MCT gates need at least one control")
        if self.num_terms < 1:
            raise ValueError("the network needs at least one product term")


def reversible_circuit(spec: ReversibleSpec, include_measurements: bool = True) -> QuantumCircuit:
    """Generate the deterministic synthetic circuit described by ``spec``."""
    rng = deterministic_rng("revlib", spec.name, spec.num_qubits, spec.num_terms)
    circuit = QuantumCircuit(spec.num_qubits, name=spec.name)

    inputs = list(range(spec.num_inputs))
    outputs = list(range(spec.num_inputs, spec.num_qubits))

    # A few input qubits start inverted, as real synthesized circuits begin
    # with NOT gates establishing polarities.
    for qubit in inputs:
        if rng.random() < 0.3:
            circuit.append(x(qubit))

    affinities = _control_affinities(spec, inputs, outputs, rng)

    for _term in range(spec.num_terms):
        target = outputs[int(rng.integers(len(outputs)))]
        controls = _pick_controls(spec, target, affinities[target], outputs, rng)
        if len(controls) == 1:
            circuit.append(cx(controls[0], target))
        else:
            ancillae = _pick_ancillae(spec, controls, target, rng)
            circuit.extend(decompose_mcx(controls, target, ancillae))
        # Occasionally a bare CNOT or NOT follows a term, mirroring the mixed
        # gate content of synthesized reversible circuits.
        roll = rng.random()
        if roll < 0.15:
            circuit.append(x(target))
        elif roll < 0.30 and len(outputs) > 1:
            other = outputs[int(rng.integers(len(outputs)))]
            if other != target:
                circuit.append(cx(target, other))

    if include_measurements:
        for qubit in outputs:
            circuit.append(measure(qubit))
    return circuit


def _control_affinities(
    spec: ReversibleSpec,
    inputs: Sequence[int],
    outputs: Sequence[int],
    rng: np.random.Generator,
) -> dict:
    """For each output qubit, the subset of input qubits its terms prefer.

    Real arithmetic functions compute each output bit from a particular
    slice of the input word, which is what produces the block/cluster
    structure in the coupling strength matrix.  We reproduce it by giving
    every output a contiguous window of inputs (with wraparound) plus a
    small chance of out-of-window controls during selection.
    """
    affinities = {}
    window = max(1, min(spec.cluster_size, len(inputs)))
    for index, output in enumerate(outputs):
        start = int(rng.integers(len(inputs))) if len(inputs) > window else 0
        affinity = [inputs[(start + offset) % len(inputs)] for offset in range(window)]
        affinities[output] = affinity
    return affinities


def _pick_controls(
    spec: ReversibleSpec,
    target: int,
    affinity: Sequence[int],
    outputs: Sequence[int],
    rng: np.random.Generator,
) -> List[int]:
    """Choose the control qubits of one MCT term."""
    num_controls = int(rng.integers(1, spec.max_controls + 1))
    pool = list(affinity)
    # With small probability a control comes from another output (shared
    # intermediate results), which couples output qubits to each other.
    if rng.random() < 0.35 and len(outputs) > 1:
        other_outputs = [q for q in outputs if q != target]
        pool.append(other_outputs[int(rng.integers(len(other_outputs)))])
    num_controls = min(num_controls, len(pool))
    chosen = rng.choice(len(pool), size=num_controls, replace=False)
    return sorted(pool[int(i)] for i in chosen)


def _pick_ancillae(
    spec: ReversibleSpec,
    controls: Sequence[int],
    target: int,
    rng: np.random.Generator,
) -> Optional[List[int]]:
    """Choose V-chain ancillae for an MCT gate when the spec allows it."""
    if not spec.use_ancilla or len(controls) <= 2:
        return None
    needed = len(controls) - 2
    free = [q for q in range(spec.num_qubits) if q not in controls and q != target]
    if len(free) < needed:
        return None
    chosen = rng.choice(len(free), size=needed, replace=False)
    return [free[int(i)] for i in chosen]
