"""Transverse-field Ising model Trotter evolution (``ising_model_16``).

The benchmark is a first-order Trotterization of the 1D transverse-field
Ising Hamiltonian: every Trotter step applies a ZZ interaction between
each pair of neighbouring spins on the chain and an X rotation on every
spin.  After decomposition each ZZ interaction costs two CNOTs between
chain neighbours, so the logical coupling graph is exactly a path — the
special case the paper discusses in Section 5.3.1 where the mapper always
finds a perfect initial mapping and 4-qubit buses can only hurt yield.
"""

from __future__ import annotations

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.decompose import decompose_circuit
from repro.circuit.gates import Gate, h, measure, rx, rz


def ising_model_circuit(
    num_qubits: int = 16,
    trotter_steps: int = 10,
    zz_angle: float = 0.3,
    field_angle: float = 0.7,
    include_measurements: bool = True,
    decomposed: bool = True,
) -> QuantumCircuit:
    """Build a 1D transverse-field Ising Trotter-evolution circuit.

    Args:
        num_qubits: Number of spins on the chain (the paper uses 16).
        trotter_steps: Number of first-order Trotter steps.
        zz_angle: ZZ interaction angle per step.
        field_angle: Transverse-field rotation angle per step.
        include_measurements: Append a final measurement on every qubit.
        decomposed: Decompose the ZZ interactions into CNOT + Rz.
    """
    if num_qubits < 2:
        raise ValueError("the Ising chain needs at least two spins")
    if trotter_steps < 1:
        raise ValueError("at least one Trotter step is required")
    circuit = QuantumCircuit(num_qubits, name=f"ising_model_{num_qubits}")
    for qubit in range(num_qubits):
        circuit.append(h(qubit))
    for _step in range(trotter_steps):
        for qubit in range(num_qubits - 1):
            circuit.append(Gate("rzz", (qubit, qubit + 1), (zz_angle,)))
        for qubit in range(num_qubits):
            circuit.append(rx(field_angle, qubit))
    if include_measurements:
        for qubit in range(num_qubits):
            circuit.append(measure(qubit))
    if decomposed:
        circuit = decompose_circuit(circuit)
        circuit.name = f"ising_model_{num_qubits}"
    return circuit
