"""Quantum Fourier Transform benchmark (``qft_16`` in the paper).

The textbook QFT applies a Hadamard to each qubit followed by controlled
phase rotations between every qubit pair.  After decomposing each
controlled phase into two CNOTs (plus single-qubit rotations), every
logical qubit pair carries exactly two two-qubit gates — the perfectly
uniform coupling pattern that makes the paper's weight-based bus
selection degenerate to random selection (Section 5.4.2).
"""

from __future__ import annotations

import math

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.decompose import decompose_circuit
from repro.circuit.gates import Gate, h, measure


def qft_circuit(
    num_qubits: int = 16,
    include_measurements: bool = True,
    decomposed: bool = True,
) -> QuantumCircuit:
    """Build an ``num_qubits``-qubit QFT circuit.

    Args:
        num_qubits: Register size (the paper uses 16).
        include_measurements: Append a final measurement on every qubit.
        decomposed: Decompose controlled-phase gates into the CNOT +
            single-qubit basis (the form consumed by the design flow).
    """
    if num_qubits < 1:
        raise ValueError("QFT needs at least one qubit")
    circuit = QuantumCircuit(num_qubits, name=f"qft_{num_qubits}")
    for target in range(num_qubits):
        circuit.append(h(target))
        for control in range(target + 1, num_qubits):
            angle = math.pi / (2 ** (control - target))
            circuit.append(Gate("cp", (control, target), (angle,)))
    if include_measurements:
        for qubit in range(num_qubits):
            circuit.append(measure(qubit))
    if decomposed:
        circuit = decompose_circuit(circuit)
        circuit.name = f"qft_{num_qubits}"
    return circuit
