"""UCCSD VQE ansatz benchmark (``UCCSD_ansatz_8`` in the paper).

The unitary coupled-cluster singles-and-doubles ansatz, Jordan-Wigner
encoded, implements each excitation term as a Pauli-string exponential:
basis-change rotations, a CNOT staircase down the involved qubit range, a
Z rotation, and the mirrored staircase back.  Because the staircases walk
through every intermediate qubit, neighbouring logical qubits accumulate
by far the largest number of CNOTs — the chain-dominated coupling pattern
shown on the left of the paper's Figure 5.
"""

from __future__ import annotations

from itertools import combinations
from typing import Sequence, Tuple

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gates import Gate, cx, h, measure, rx, rz

#: Rotation angle used for every excitation amplitude.  The actual values do
#: not matter for architecture design (only the gate structure is profiled),
#: so a fixed representative angle keeps the circuit deterministic.
_DEFAULT_THETA = 0.1


def uccsd_ansatz_circuit(
    num_qubits: int = 8,
    num_occupied: int = None,
    theta: float = _DEFAULT_THETA,
    include_measurements: bool = True,
) -> QuantumCircuit:
    """Build a UCCSD ansatz circuit on ``num_qubits`` spin orbitals.

    Args:
        num_qubits: Number of qubits / spin orbitals (the paper uses 8).
        num_occupied: Number of occupied orbitals; defaults to half of the
            register, the standard half-filling choice.
        theta: Excitation amplitude used for every term.
        include_measurements: Append a final measurement on every qubit.
    """
    if num_qubits < 4:
        raise ValueError("UCCSD needs at least four spin orbitals")
    occupied = num_occupied if num_occupied is not None else num_qubits // 2
    if not 0 < occupied < num_qubits:
        raise ValueError("the number of occupied orbitals must be between 1 and num_qubits - 1")

    circuit = QuantumCircuit(num_qubits, name=f"UCCSD_ansatz_{num_qubits}")
    # Hartree-Fock reference state: occupied orbitals start in |1>.
    for qubit in range(occupied):
        circuit.append(Gate("x", (qubit,)))

    occupied_orbitals = list(range(occupied))
    virtual_orbitals = list(range(occupied, num_qubits))

    # Single excitations: one Pauli-string pair per (occupied, virtual) pair.
    # Their ladders connect only the two involved orbitals directly, which is
    # what produces the light off-chain couplings visible in the paper's
    # Figure 5 alongside the heavy nearest-neighbour chain.
    for i in occupied_orbitals:
        for a in virtual_orbitals:
            _append_single_excitation(circuit, i, a, theta)

    # Double excitations: one 8-term Pauli-string group per pair of occupied
    # and pair of virtual orbitals.
    for i, j in combinations(occupied_orbitals, 2):
        for a, b in combinations(virtual_orbitals, 2):
            _append_double_excitation(circuit, i, j, a, b, theta)

    if include_measurements:
        for qubit in range(num_qubits):
            circuit.append(measure(qubit))
    return circuit


def _append_single_excitation(circuit: QuantumCircuit, i: int, a: int, theta: float) -> None:
    """Exponential of the single-excitation operator between orbitals ``i`` and ``a``.

    Jordan-Wigner form: two Pauli strings (XY and YX).  The entangling
    ladder couples the two involved orbitals directly (the compact ladder
    used by common UCCSD implementations), so single excitations introduce
    a small amount of long-range coupling on top of the chain produced by
    the double excitations.
    """
    for bases in (("x", "y"), ("y", "x")):
        _append_pauli_string_rotation(
            circuit, [(i, bases[0]), (a, bases[1])], theta, contiguous=False
        )


def _append_double_excitation(
    circuit: QuantumCircuit, i: int, j: int, a: int, b: int, theta: float
) -> None:
    """Exponential of the double-excitation operator on orbitals (i, j) -> (a, b).

    The Jordan-Wigner expansion yields eight Pauli strings over the four
    involved qubits (with Z chains over the intermediate ranges).
    """
    strings = [
        ("x", "x", "y", "x"),
        ("y", "x", "y", "y"),
        ("x", "y", "y", "y"),
        ("x", "x", "x", "y"),
        ("y", "x", "x", "x"),
        ("x", "y", "x", "x"),
        ("y", "y", "y", "x"),
        ("y", "y", "x", "y"),
    ]
    for bases in strings:
        _append_pauli_string_rotation(
            circuit,
            [(i, bases[0]), (j, bases[1]), (a, bases[2]), (b, bases[3])],
            theta / 8.0,
        )


def _append_pauli_string_rotation(
    circuit: QuantumCircuit,
    terms: Sequence[Tuple[int, str]],
    theta: float,
    contiguous: bool = True,
) -> None:
    """Append exp(-i theta/2 * P) for a Pauli string P with X/Y terms on ``terms``.

    Args:
        circuit: Circuit to append to.
        terms: ``(qubit, basis)`` pairs with basis ``"x"`` or ``"y"``.
        theta: Rotation angle.
        contiguous: When True, the Jordan-Wigner Z chain is realized by a
            CNOT staircase over the full contiguous qubit range between the
            lowest and highest involved qubit — the source of the heavy
            chain-shaped coupling.  When False, the ladder hops directly
            between the involved qubits only (the compact form), producing
            lighter long-range couplings.
    """
    ordered = sorted(terms, key=lambda item: item[0])
    qubits = [qubit for qubit, _basis in ordered]
    low, high = qubits[0], qubits[-1]

    # Basis changes: X -> H, Y -> Rx(pi/2) (approximated with a fixed rotation;
    # the exact single-qubit content does not influence profiling).
    for qubit, basis in ordered:
        if basis == "x":
            circuit.append(h(qubit))
        else:
            circuit.append(rx(1.5707963267948966, qubit))

    if contiguous:
        ladder = list(range(low, high + 1))
    else:
        ladder = qubits
    # CNOT ladder down, Z rotation on the last qubit, ladder back up.
    for index in range(len(ladder) - 1):
        circuit.append(cx(ladder[index], ladder[index + 1]))
    circuit.append(rz(theta, high))
    for index in range(len(ladder) - 2, -1, -1):
        circuit.append(cx(ladder[index], ladder[index + 1]))

    # Undo the basis changes.
    for qubit, basis in ordered:
        if basis == "x":
            circuit.append(h(qubit))
        else:
            circuit.append(rx(-1.5707963267948966, qubit))
