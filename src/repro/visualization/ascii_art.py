"""ASCII rendering of lattices, architectures, and coupling matrices."""

from __future__ import annotations


import numpy as np

from repro.hardware.architecture import Architecture
from repro.hardware.lattice import Lattice


def render_lattice(lattice: Lattice) -> str:
    """Draw the occupied lattice nodes as a grid of qubit ids.

    The lattice is translated so its bounding box starts at the origin;
    empty nodes are shown as dots.  The y axis grows upward, matching the
    coordinate convention of the design flow.
    """
    if lattice.num_qubits == 0:
        return "(empty lattice)"
    normalized = lattice.normalized()
    (_, _), (max_x, max_y) = normalized.bounding_box()
    width = max(3, len(str(max(normalized.qubits))) + 1)
    rows = []
    for y in range(max_y, -1, -1):
        cells = []
        for x in range(0, max_x + 1):
            qubit = normalized.qubit_at((x, y))
            cells.append(f"q{qubit}".rjust(width) if qubit is not None else ".".rjust(width))
        rows.append(" ".join(cells))
    return "\n".join(rows)


def render_architecture(architecture: Architecture) -> str:
    """Draw an architecture: the lattice, its buses, and its frequency plan."""
    lines = [f"Architecture: {architecture.name}"]
    lines.append(
        f"  {architecture.num_qubits} qubits, {architecture.num_connections()} couplings, "
        f"{len(architecture.four_qubit_buses())} four-qubit buses"
    )
    lines.append(render_lattice(architecture.lattice))
    if architecture.four_qubit_buses():
        squares = ", ".join(
            str(bus.square.origin) for bus in architecture.four_qubit_buses()
        )
        lines.append(f"  4-qubit bus squares: {squares}")
    if architecture.frequencies:
        freq_text = ", ".join(
            f"q{qubit}={architecture.frequencies[qubit]:.2f}"
            for qubit in architecture.qubits
        )
        lines.append(f"  frequencies (GHz): {freq_text}")
    return "\n".join(lines)


def render_coupling_matrix(matrix: np.ndarray, max_width: int = 5) -> str:
    """Render a coupling strength matrix as an aligned integer grid.

    Mirrors the style of the paper's Figure 5 heat-map annotations.
    """
    matrix = np.asarray(matrix)
    n = matrix.shape[0]
    cell = max(max_width, len(str(int(matrix.max()))) + 1) if matrix.size else max_width
    header = " " * cell + "".join(f"q{j}".rjust(cell) for j in range(n))
    rows = [header]
    for i in range(n):
        row = f"q{i}".rjust(cell) + "".join(
            f"{int(matrix[i, j])}".rjust(cell) for j in range(n)
        )
        rows.append(row)
    return "\n".join(rows)
