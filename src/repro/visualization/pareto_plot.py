"""Text scatter plot of yield vs normalized reciprocal gate count (Figure 10 style)."""

from __future__ import annotations

import math

from repro.evaluation.experiment import ExperimentResult

#: One-character markers per configuration, mirroring the Figure 10 legend.
_MARKERS = {
    "ibm": "#",
    "eff-full": "o",
    "eff-rd-bus": "x",
    "eff-5-freq": "+",
    "eff-layout-only": "*",
}


def render_pareto_scatter(
    result: ExperimentResult,
    width: int = 64,
    height: int = 20,
    min_yield: float = 1e-5,
) -> str:
    """Draw one benchmark's subfigure of Figure 10 as an ASCII scatter plot.

    The X axis is the normalized reciprocal gate count (better performance
    to the right); the Y axis is the yield rate on a log scale from
    ``min_yield`` to 1, matching the paper's axes.  Points whose yield fell
    below ``min_yield`` (including zero estimates) are clamped to the
    bottom row.
    """
    if not result.points:
        return f"== {result.benchmark} == (no data)"
    xs = [point.normalized_reciprocal_gates for point in result.points]
    x_min, x_max = min(xs), max(xs)
    x_span = (x_max - x_min) or 1.0
    log_min = math.log10(min_yield)

    grid = [[" "] * width for _ in range(height)]
    for point in result.points:
        column = int(round((point.normalized_reciprocal_gates - x_min) / x_span * (width - 1)))
        clamped_yield = max(point.yield_rate, min_yield)
        row_fraction = (math.log10(clamped_yield) - log_min) / (0.0 - log_min)
        row = (height - 1) - int(round(row_fraction * (height - 1)))
        row = min(max(row, 0), height - 1)
        marker = _MARKERS.get(point.config.value, "?")
        grid[row][column] = marker

    lines = [f"== {result.benchmark} ==  (y: yield {min_yield:g}..1 log scale, x: norm 1/gates)"]
    for index, row in enumerate(grid):
        if index == 0:
            label = "1e+00 |"
        elif index == len(grid) - 1:
            label = f"{min_yield:.0e} |"
        else:
            label = "      |"
        lines.append(label + "".join(row))
    lines.append("      +" + "-" * width)
    lines.append(f"       {x_min:.2f}" + " " * (width - 12) + f"{x_max:.2f}")
    legend = "  ".join(f"{marker}={name}" for name, marker in _MARKERS.items())
    lines.append("       " + legend)
    return "\n".join(lines)
