"""Text-based visualization of architectures, coupling matrices, and Pareto data.

Everything renders to plain strings so results can be inspected in a
terminal, embedded in logs, and asserted on in tests without a plotting
dependency.
"""

from repro.visualization.ascii_art import (
    render_architecture,
    render_coupling_matrix,
    render_lattice,
)
from repro.visualization.pareto_plot import render_pareto_scatter

__all__ = [
    "render_lattice",
    "render_architecture",
    "render_coupling_matrix",
    "render_pareto_scatter",
]
