"""Deterministic fault injection for supervised sweeps.

Seeded, content-addressed fault schedules (:class:`FaultPlan`) fire
worker crashes, hangs, native-kernel aborts, and store corruption at
named injection sites, keyed by the same task digests the sweep
checkpoint uses.  Armed only via ``REPRO_FAULT_PLAN``/``--fault-plan``;
production paths pay a single ``None`` check.
"""

from repro.faults.inject import (
    FaultInjected,
    active,
    arm,
    current_context,
    fault_boundary,
    maybe_inject,
    reset,
    task_context,
)
from repro.faults.plan import (
    FAULT_KINDS,
    FAULT_PLAN_ENV,
    FaultPlan,
    FaultSpec,
    PLAN_FORMAT,
    PLAN_VERSION,
    write_plan,
)

__all__ = (
    "FAULT_KINDS",
    "FAULT_PLAN_ENV",
    "FaultInjected",
    "FaultPlan",
    "FaultSpec",
    "PLAN_FORMAT",
    "PLAN_VERSION",
    "active",
    "arm",
    "current_context",
    "fault_boundary",
    "maybe_inject",
    "reset",
    "task_context",
    "write_plan",
)
