"""Injection-site runtime for deterministic fault schedules.

Worker-side code declares *injection sites* — named points where a
:class:`~repro.faults.plan.FaultPlan` may fire::

    from repro import faults
    faults.maybe_inject("evaluate:start")

With no plan loaded (the production default) ``maybe_inject`` is a
single ``None`` check — zero overhead, no imports, no hashing.  A plan
is armed only via the ``REPRO_FAULT_PLAN`` environment variable (set by
``--fault-plan`` at the CLI, inherited by forked workers) or
:func:`arm` in tests.

The *task context* (content digest + attempt index) is established by
the supervised worker around each attempt via :func:`task_context`;
sites hit outside any task context see an empty digest and attempt 0,
so plan entries with ``"task": null`` still fire on unsupervised paths
(e.g. store corruption during a plain sweep).
"""

from __future__ import annotations

import os
import signal
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Callable, Dict, Iterator, Optional, Tuple, TypeVar, Union

from repro.faults.plan import FAULT_PLAN_ENV, FaultPlan, FaultSpec


class FaultInjected(RuntimeError):
    """Raised by an ``exception``-kind fault at an injection site."""


_PLAN: Optional[FaultPlan] = None
_PLAN_LOADED = False
_CONTEXT = threading.local()
_OCCURRENCES: Dict[Tuple[str, str, int], int] = {}
_LOCK = threading.Lock()


def _load_plan() -> Optional[FaultPlan]:
    global _PLAN, _PLAN_LOADED
    if not _PLAN_LOADED:
        path = os.environ.get(FAULT_PLAN_ENV)
        _PLAN = FaultPlan.load(path) if path else None
        _PLAN_LOADED = True
    return _PLAN


def active() -> bool:
    """True when a fault plan is armed in this process."""
    return _load_plan() is not None


def arm(plan: Optional[FaultPlan]) -> None:
    """Arm (or clear, with ``None``) a plan directly — test hook."""
    global _PLAN, _PLAN_LOADED
    _PLAN = plan
    _PLAN_LOADED = True
    _OCCURRENCES.clear()


def reset() -> None:
    """Forget the cached plan so ``REPRO_FAULT_PLAN`` is re-read."""
    global _PLAN, _PLAN_LOADED
    _PLAN = None
    _PLAN_LOADED = False
    _OCCURRENCES.clear()


@contextmanager
def task_context(task_digest: str, attempt: int = 0) -> Iterator[None]:
    """Scope injection sites to a content-addressed task attempt."""
    previous = current_context()
    _CONTEXT.digest = task_digest
    _CONTEXT.attempt = attempt
    try:
        yield
    finally:
        _CONTEXT.digest, _CONTEXT.attempt = previous


def current_context() -> Tuple[str, int]:
    return (
        getattr(_CONTEXT, "digest", ""),
        getattr(_CONTEXT, "attempt", 0),
    )


def _hang(spec: FaultSpec) -> None:
    if spec.hold_gil:
        # Starve heartbeat threads too: sleep in the C runtime without
        # releasing the GIL, the shape of a wedged native extension.
        import ctypes

        libc = ctypes.PyDLL(None)
        remaining = spec.delay_s
        while remaining > 0:
            libc.sleep(int(min(remaining, 1.0)) or 1)
            remaining -= 1.0
    else:
        time.sleep(spec.delay_s)


def _corrupt(spec: FaultSpec, store_path: Union[str, Path]) -> None:
    """Tear the tail off a store file, as a crash mid-append would."""
    target = Path(store_path)
    if target.is_dir():
        shards = [p for p in sorted(target.iterdir()) if p.is_file()]
        if not shards:
            return
        target = shards[0]
    if not target.exists():
        return
    size = target.stat().st_size
    keep = max(0, size - spec.truncate_bytes)
    with open(target, "r+b") as handle:
        handle.truncate(keep)


def _execute(spec: FaultSpec, site: str,
             store_path: Optional[Union[str, Path]]) -> None:
    if spec.kind == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    elif spec.kind == "exit":
        os._exit(spec.exit_code)
    elif spec.kind == "segv":
        # Simulated native abort: die by SIGSEGV exactly as a memory
        # bug in the C merge kernel would, without corrupting the heap.
        os.kill(os.getpid(), signal.SIGSEGV)
    elif spec.kind == "hang":
        _hang(spec)
    elif spec.kind == "exception":
        raise FaultInjected(f"injected fault at site {site!r}")
    elif spec.kind == "corrupt":
        if store_path is not None:
            _corrupt(spec, store_path)


def maybe_inject(site: str, *,
                 store_path: Optional[Union[str, Path]] = None) -> None:
    """Fire a scheduled fault at ``site`` if the armed plan has one.

    ``store_path`` names the store file/directory a ``corrupt`` fault
    would tear; sites that do not touch a store omit it.
    """
    plan = _load_plan()
    if plan is None:
        return
    digest, attempt = current_context()
    with _LOCK:
        key = (site, digest, attempt)
        occurrence = _OCCURRENCES.get(key, 0)
        _OCCURRENCES[key] = occurrence + 1
    spec = plan.select(site, digest, attempt, occurrence)
    if spec is None:
        return
    from repro.runtime.metrics import global_metrics

    global_metrics().increment(f"faults/injected:{spec.kind}")
    _execute(spec, site, store_path)


_F = TypeVar("_F", bound=Callable[..., object])


def fault_boundary(func: _F) -> _F:
    """Mark ``func`` as a sanctioned fault boundary.

    A fault boundary is a supervision-layer function whose job is to
    catch *everything* a task attempt can raise and convert it into a
    structured failure message for the supervisor.  The REPRO-R5xx lint
    rules allow blanket ``except`` handlers only inside functions
    carrying this marker; anywhere else in worker/supervision code a
    broad handler silently swallows faults the supervisor needs to see.
    """
    func.__fault_boundary__ = True  # type: ignore[attr-defined]
    return func


__all__ = (
    "FaultInjected",
    "active",
    "arm",
    "current_context",
    "fault_boundary",
    "maybe_inject",
    "reset",
    "task_context",
)
