"""Deterministic, content-addressed fault schedules.

A :class:`FaultPlan` is a seeded list of :class:`FaultSpec` entries that
decide — as a pure function of ``(plan seed, injection site, task
digest, attempt, occurrence)`` — whether a fault fires at a given
injection site.  Plans are keyed by the same content digests the sweep
checkpoint uses (:func:`repro.evaluation.checkpoint.generation_task_key`
/ :func:`~repro.evaluation.checkpoint.point_task_key`), so a schedule
written against one sweep replays bit-identically on any ``--jobs``
level and survives task reordering.

Plans are ordinary JSON::

    {
      "format": "repro-fault-plan",
      "version": 1,
      "seed": 7,
      "faults": [
        {"site": "evaluate:start", "kind": "kill", "task": "3f9a"},
        {"site": "task:start", "kind": "hang", "task": "80c1", "delay_s": 60},
        {"site": "native-kernel", "kind": "segv", "task": "c44d"},
        {"site": "evaluate:start", "kind": "exit", "task": "11ab",
         "attempts": null}
      ]
    }

``task`` is a hex prefix of the content digest (``null`` matches every
task).  ``attempts`` lists the retry indices on which the fault fires:
the default ``[0]`` gives a transient fault (first attempt only, the
retry succeeds); ``null`` means *every* attempt — a poison task.
``rate`` (default 1.0) thins matches with a seeded hash so large sweeps
can sample faults without enumerating digests.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Optional, Sequence, Tuple, Union

FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"
PLAN_FORMAT = "repro-fault-plan"
PLAN_VERSION = 1

#: Recognised fault kinds.
#:
#: ``kill``       SIGKILL the current process (uncatchable worker crash)
#: ``exit``       ``os._exit`` with ``exit_code`` (abrupt but clean-exit crash)
#: ``segv``       SIGSEGV the current process (simulated native-kernel abort)
#: ``hang``       sleep ``delay_s`` seconds (optionally holding the GIL)
#: ``exception``  raise :class:`repro.faults.inject.FaultInjected`
#: ``corrupt``    truncate ``truncate_bytes`` from the tail of the store
#:                file passed to the injection site (simulated torn write)
FAULT_KINDS = ("kill", "exit", "segv", "hang", "exception", "corrupt")


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: where, what, and for which task/attempts."""

    site: str
    kind: str
    task: Optional[str] = None
    attempts: Optional[Tuple[int, ...]] = (0,)
    rate: float = 1.0
    delay_s: float = 3600.0
    hold_gil: bool = False
    exit_code: int = 113
    truncate_bytes: int = 16

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if not self.site:
            raise ValueError("fault site must be a non-empty string")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {self.rate}")

    def matches(self, site: str, task_digest: str, attempt: int) -> bool:
        """Structural match; the seeded ``rate`` draw happens in the plan."""
        if self.site != "*" and self.site != site:
            return False
        if self.task is not None and not task_digest.startswith(self.task):
            return False
        if self.attempts is not None and attempt not in self.attempts:
            return False
        return True


def _spec_from_mapping(raw: Mapping[str, Any]) -> FaultSpec:
    known = {
        "site", "kind", "task", "attempts", "rate",
        "delay_s", "hold_gil", "exit_code", "truncate_bytes",
    }
    unknown = sorted(set(raw) - known)
    if unknown:
        raise ValueError(f"unknown fault spec keys: {unknown}")
    attempts = raw.get("attempts", (0,))
    if attempts is not None:
        attempts = tuple(int(value) for value in attempts)
    return FaultSpec(
        site=str(raw["site"]),
        kind=str(raw["kind"]),
        task=None if raw.get("task") is None else str(raw["task"]),
        attempts=attempts,
        rate=float(raw.get("rate", 1.0)),
        delay_s=float(raw.get("delay_s", 3600.0)),
        hold_gil=bool(raw.get("hold_gil", False)),
        exit_code=int(raw.get("exit_code", 113)),
        truncate_bytes=int(raw.get("truncate_bytes", 16)),
    )


@dataclass(frozen=True)
class FaultPlan:
    """A seeded schedule of faults, replayable across processes."""

    seed: int = 0
    faults: Tuple[FaultSpec, ...] = field(default_factory=tuple)

    @classmethod
    def from_mapping(cls, payload: Mapping[str, Any]) -> "FaultPlan":
        if payload.get("format") != PLAN_FORMAT:
            raise ValueError(
                f"not a fault plan: format={payload.get('format')!r} "
                f"(expected {PLAN_FORMAT!r})"
            )
        if payload.get("version") != PLAN_VERSION:
            raise ValueError(
                f"unsupported fault plan version {payload.get('version')!r}"
            )
        faults = tuple(
            _spec_from_mapping(raw) for raw in payload.get("faults", ())
        )
        return cls(seed=int(payload.get("seed", 0)), faults=faults)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "FaultPlan":
        text = Path(path).read_text(encoding="utf-8")
        return cls.from_mapping(json.loads(text))

    def to_mapping(self) -> Mapping[str, Any]:
        faults = []
        for spec in self.faults:
            entry: dict = {"site": spec.site, "kind": spec.kind}
            if spec.task is not None:
                entry["task"] = spec.task
            entry["attempts"] = (
                None if spec.attempts is None else list(spec.attempts)
            )
            if spec.rate != 1.0:
                entry["rate"] = spec.rate
            if spec.kind == "hang":
                entry["delay_s"] = spec.delay_s
                entry["hold_gil"] = spec.hold_gil
            if spec.kind == "exit":
                entry["exit_code"] = spec.exit_code
            if spec.kind == "corrupt":
                entry["truncate_bytes"] = spec.truncate_bytes
            faults.append(entry)
        return {
            "format": PLAN_FORMAT,
            "version": PLAN_VERSION,
            "seed": self.seed,
            "faults": faults,
        }

    def _rate_draw(self, index: int, site: str, task_digest: str,
                   occurrence: int) -> float:
        material = f"{self.seed}|{index}|{site}|{task_digest}|{occurrence}"
        digest = hashlib.sha256(material.encode("utf-8")).hexdigest()
        return int(digest[:12], 16) / float(16 ** 12)

    def select(self, site: str, task_digest: str, attempt: int,
               occurrence: int) -> Optional[FaultSpec]:
        """First spec that fires at this site for this task/attempt.

        Pure function of the arguments and the plan seed — the same
        schedule replays identically in every worker process.
        """
        for index, spec in enumerate(self.faults):
            if not spec.matches(site, task_digest, attempt):
                continue
            if spec.rate >= 1.0:
                return spec
            if self._rate_draw(index, site, task_digest, occurrence) < spec.rate:
                return spec
        return None


def write_plan(plan: FaultPlan, path: Union[str, Path]) -> None:
    Path(path).write_text(
        json.dumps(plan.to_mapping(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


__all__: Sequence[str] = (
    "FAULT_KINDS",
    "FAULT_PLAN_ENV",
    "FaultPlan",
    "FaultSpec",
    "PLAN_FORMAT",
    "PLAN_VERSION",
    "write_plan",
)
