"""The routing engine: per-architecture router reuse plus result memoization.

Every evaluation point of the paper's Figure 10 grid routes a benchmark
onto a candidate architecture, and sweeps revisit the same architectures
(and often the same (circuit, architecture) pairs) many times.  Two layers
of reuse make that cheap:

* **Router reuse** — a :class:`RoutingEngine` keeps one
  :class:`~repro.mapping.sabre.SabreRouter` (and therefore one BFS
  distance matrix and one candidate-edge table) per distinct architecture,
  instead of rebuilding them on every :func:`route_circuit` call.
* **Result memoization** — a :class:`RoutingCache` memoizes completed
  :class:`~repro.mapping.router.MappingResult` objects under a
  ``(circuit, architecture, parameters)`` key.

Both layers are *transparent*: routing is a pure deterministic function of
the key, so cache hits return exactly what a fresh computation would, and
parallel sweeps stay byte-identical for any worker count no matter how
hits and misses distribute across processes.
"""

from __future__ import annotations

import hashlib
import time
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from repro import persistence

from repro.circuit.circuit import QuantumCircuit
from repro.hardware.architecture import Architecture
from repro.mapping.distance import DistanceMatrix
from repro.mapping.initial import initial_mapping
from repro.mapping.sabre import SabreParameters, SabreRouter
from repro.profiling.profiler import CircuitProfile, profile_circuit
from repro.runtime.metrics import global_metrics

_metrics = global_metrics()

#: Default bound on memoized routing results per engine.  Entries retain
#: the full routed circuit only when a caller asked for it
#: (``keep_routed_circuit=True``); sweep-style counts-only routings cache
#: compact results.
DEFAULT_CACHE_ENTRIES = 256


def circuit_cache_key(circuit: QuantumCircuit) -> Tuple:
    """Value identity of a circuit: register size, name, length, content digest.

    The name participates because it is recorded in the
    :class:`~repro.mapping.router.MappingResult` (and in the routed
    circuit's own name), so two same-gate circuits with different names
    must not share a memoized result.  The gate sequence itself enters via
    :meth:`~repro.circuit.circuit.QuantumCircuit.content_hash` — a cached
    digest — rather than the full gate tuple, so building and comparing
    keys stays O(1) per route call instead of re-hashing thousands of gate
    objects every lookup.  Hash collisions are harmless: cache entries
    carry the exact gate tuple and the engine confirms it on every hit.
    """
    return (circuit.num_qubits, circuit.name, len(circuit), circuit.content_hash())


@dataclass
class _CacheEntry:
    """A memoized routing: the exact gate tuple plus the result.

    ``gates`` guards against 64-bit content-hash collisions in the cache
    key: a hit is only served after confirming the stored tuple matches
    the requesting circuit's (identity check first — free for the common
    same-circuit-object case — full comparison otherwise).  Entries
    restored from a persisted cache carry ``gates=None`` — the gate
    tuples are not written to disk, so loaded hits trust the content
    digest in the key (see :meth:`RoutingCache.save`).
    """

    gates: Optional[Tuple]
    result: object


def profile_cache_key(profile: Optional[CircuitProfile]) -> Optional[int]:
    """Value identity of a caller-supplied profile (None for no profile).

    The profile drives the initial placement, so a caller-supplied
    profile participates in routing cache keys by content digest over
    every field the placement reads (strengths, degree order, coupling
    edges): a profile that slips past the engine's cheap identity guard
    can only ever poison (or hit) its own entry, never the profile-less
    one.  SHA-256 rather than the salted built-in ``hash()``, so the key
    survives a save/load round trip into another process.
    """
    if profile is None:
        return None
    digest = hashlib.sha256()
    digest.update(profile.strength_matrix.tobytes())
    digest.update(str(tuple(profile.degree_list)).encode())
    digest.update(str(
        tuple(sorted(tuple(sorted(edge)) for edge in profile.graph.edges()))
    ).encode())
    return int.from_bytes(digest.digest()[:8], "big")


def architecture_cache_key(architecture: Architecture) -> Tuple:
    """Value identity of an architecture as far as routing is concerned.

    Routing depends on the physical qubit set, the coupling graph, the
    recorded pseudo-mapping (it seeds the initial placement), and the name
    (recorded in results).  Frequencies are irrelevant to routing and are
    deliberately excluded so that architectures differing only in their
    frequency plan share routers and cached results.
    """
    return (
        architecture.name,
        tuple(architecture.qubits),
        tuple(architecture.coupling_edges()),
        tuple(sorted(architecture.logical_to_physical.items())),
    )


class RoutingCache:
    """A bounded, deterministic LRU memo of completed routing results.

    Keys are ``(circuit key, architecture key, SabreParameters)`` tuples;
    values are the engine's cache entries (exact gate tuple + a
    :class:`~repro.mapping.router.MappingResult` whose ``routed_circuit``
    is present only if the producing call requested it).  Eviction is
    least-recently-used with a fixed bound, so long sweeps cannot grow
    memory without limit.
    """

    #: Persisted-file envelope (see :mod:`repro.persistence`).
    FORMAT = "repro-routing-cache"
    VERSION = 1

    def __init__(self, max_entries: Optional[int] = DEFAULT_CACHE_ENTRIES) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1 or None, got {max_entries}")
        self.max_entries = max_entries
        self._entries: "OrderedDict[Tuple, object]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: Tuple, sufficient=None):
        """The memoized result for ``key``, or None (counts hit/miss stats).

        An entry rejected by the ``sufficient`` predicate counts as a
        *miss* — the caller will recompute in full, so reporting a hit
        would overstate cache effectiveness.
        """
        entry = self._entries.get(key)
        if entry is None or (sufficient is not None and not sufficient(entry)):
            self.misses += 1
            _metrics.increment("routing/cache/misses")
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        _metrics.increment("routing/cache/hits")
        return entry

    def put(self, key: Tuple, result) -> None:
        self._entries[key] = result
        self._entries.move_to_end(key)
        if self.max_entries is not None:
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()

    def stats(self) -> Dict[str, int]:
        return {"entries": len(self._entries), "hits": self.hits, "misses": self.misses}

    # -- persistence ----------------------------------------------------------

    def save(self, path: Union[str, Path]) -> int:
        """Persist the memoized routings to a counts-only JSON file.

        Only the mapping *results* are written — swap counts, gate
        counts, and the initial/final mappings — never routed circuits or
        gate tuples, so the file stays small and sweep-scale caches
        persist in milliseconds.  Returns the number of entries written.

        The file is an image of the in-memory cache, so it holds at most
        ``max_entries`` results; writers wanting to extend an existing
        file rather than replace it should use :meth:`merge_save` (cached
        entries win over file entries, anything beyond the bound falls
        out least-recently-used, and the load-merge-rewrite cycle is
        serialized against concurrent writers).  The write itself is
        atomic (temp file + ``os.replace``), so readers never observe a
        torn or truncated file.

        Because the gate tuples are not persisted, results served from a
        loaded cache are trusted on the 64-bit circuit content digest in
        the key alone (the in-memory collision guard cannot re-confirm
        them).  A digest collision between two same-length, same-name,
        same-width circuits is the only way a loaded entry can be wrong.
        """
        return persistence.write_cache_file(
            path, self.FORMAT, self.VERSION, self._serialize_entries(),
            key_of=self._record_key, kind="routing cache",
        )

    def _serialize_entries(self) -> list:
        """The in-memory entries as persistable counts-only records."""
        entries = []
        for key, entry in self._entries.items():
            circuit_key, arch_key, parameters, profile_key = key
            result = entry.result
            entries.append({
                "circuit_key": list(circuit_key),
                "architecture_key": _listify(arch_key),
                "parameters": _parameters_to_dict(parameters),
                "profile_key": profile_key,
                "result": {
                    "circuit_name": result.circuit_name,
                    "architecture_name": result.architecture_name,
                    "original_gates": result.original_gates,
                    "original_two_qubit_gates": result.original_two_qubit_gates,
                    "num_swaps": result.num_swaps,
                    "initial_mapping": {str(k): v for k, v in result.initial_mapping.items()},
                    "final_mapping": {str(k): v for k, v in result.final_mapping.items()},
                },
            })
        return entries

    @staticmethod
    def _record_key(record: dict) -> Tuple:
        """A serialized record's identity (file-level merge key)."""
        return (
            persistence.tuplify(record["circuit_key"]),
            persistence.tuplify(record["architecture_key"]),
            tuple(sorted(record["parameters"].items())),
            record["profile_key"],
        )

    def load(self, path: Union[str, Path], missing_ok: bool = False) -> int:
        """Merge a persisted cache file into this cache.

        Loaded entries are counts-only (no routed circuit): route calls
        with ``keep_routed_circuit=True`` still recompute and upgrade
        them.  Existing in-memory entries win over file entries under the
        same key.  Files with the wrong format marker or an unknown
        schema version are rejected with a clear error.  Returns the
        number of merged entries still resident afterwards — on a
        bounded cache, a file larger than ``max_entries`` merges only
        its tail, and the count reflects that rather than masking the
        eviction.  ``missing_ok`` turns a nonexistent file into a no-op
        returning 0.
        """
        from repro.mapping.router import MappingResult

        records = persistence.read_cache_entries(
            path, self.FORMAT, self.VERSION, missing_ok=missing_ok,
            kind="routing cache",
        )
        if records is None:
            return 0

        def decode(record: dict) -> Tuple:
            key = (
                tuple(record["circuit_key"]),
                _tuplify(record["architecture_key"]),
                _parameters_from_dict(record["parameters"]),
                record["profile_key"],
            )
            data = record["result"]
            result = MappingResult(
                circuit_name=data["circuit_name"],
                architecture_name=data["architecture_name"],
                original_gates=data["original_gates"],
                original_two_qubit_gates=data["original_two_qubit_gates"],
                num_swaps=data["num_swaps"],
                initial_mapping={int(k): v for k, v in data["initial_mapping"].items()},
                final_mapping={int(k): v for k, v in data["final_mapping"].items()},
                routed_circuit=None,
            )
            return key, _CacheEntry(gates=None, result=result)

        return persistence.merge_loaded(self, records, decode)

    def merge_save(self, path: Union[str, Path]) -> int:
        """Extend the persisted file with this cache's entries, concurrency-safe.

        A file-level union under a per-path lock: the file keeps every
        entry it already holds (this cache's entries win under equal
        keys) plus everything memoized here — it never shrinks to this
        cache's LRU bound, and concurrent workers sharing one cache path
        cannot drop each other's results.  Returns the number of entries
        the rewritten file holds.
        """
        return persistence.union_merge_save(
            path, self.FORMAT, self.VERSION, self._serialize_entries(),
            self._record_key, kind="routing cache",
        )


class RoutingEngine:
    """Routes circuits onto architectures with per-architecture state reuse.

    One engine holds one :class:`SabreParameters` configuration.  Use
    :meth:`route` exactly like :func:`~repro.mapping.router.route_circuit`;
    repeated calls against the same architecture share the router (distance
    matrix, candidate-edge tables), and repeated calls with the same
    circuit *and* architecture return memoized results.

    Args:
        parameters: Router tuning parameters shared by every route call.
        cache: Optional externally owned :class:`RoutingCache` (a fresh
            bounded cache is created when omitted).
    """

    def __init__(
        self,
        parameters: Optional[SabreParameters] = None,
        cache: Optional[RoutingCache] = None,
    ) -> None:
        self.parameters = parameters or SabreParameters()
        self.cache = cache if cache is not None else RoutingCache()
        # Routers keyed by architecture identity, LRU-bounded like the
        # sibling tables so a worker sweeping many candidate architectures
        # cannot grow distance matrices and edge tables without limit.
        self._routers: "OrderedDict[Tuple, SabreRouter]" = OrderedDict()
        # Dependency DAGs keyed by circuit identity: one circuit routes onto
        # many candidate architectures per evaluation, and the DAG (plus its
        # use inside verify_routing) is the same for all of them.
        self._dags: "OrderedDict[Tuple, object]" = OrderedDict()

    def router_for(self, architecture: Architecture) -> SabreRouter:
        """The shared router (and distance matrix) for an architecture (bounded LRU)."""
        key = architecture_cache_key(architecture)
        router = self._routers.get(key)
        if router is None:
            router = SabreRouter(architecture, self.parameters)
            self._routers[key] = router
        self._routers.move_to_end(key)
        while len(self._routers) > 128:
            self._routers.popitem(last=False)
        return router

    def distances_for(self, architecture: Architecture) -> DistanceMatrix:
        """The shared distance matrix for an architecture."""
        return self.router_for(architecture).distances

    def _dag_for(self, circuit: QuantumCircuit, circuit_key: Tuple):
        """The shared dependency DAG for a circuit (bounded LRU).

        Like the result cache, a stored DAG is only served after its
        circuit's gate tuple is confirmed against the requesting circuit's
        (identity first, full comparison on mismatch) — a content-hash
        collision in ``circuit_key`` rebuilds instead of verifying the
        routing against the wrong circuit's DAG.
        """
        from repro.circuit.dag import CircuitDAG

        gates = circuit.gates
        dag = self._dags.get(circuit_key)
        if dag is None or (dag.circuit.gates is not gates and dag.circuit.gates != gates):
            dag = CircuitDAG(circuit)
            self._dags[circuit_key] = dag
        self._dags.move_to_end(circuit_key)
        while len(self._dags) > 32:
            self._dags.popitem(last=False)
        return dag

    def route(
        self,
        circuit: QuantumCircuit,
        architecture: Architecture,
        profile: Optional[CircuitProfile] = None,
        keep_routed_circuit: bool = True,
    ):
        """Map ``circuit`` onto ``architecture`` (memoized; see ``route_circuit``).

        Args:
            circuit: Logical circuit in the CNOT + single-qubit basis.
            architecture: Target hardware architecture.
            profile: Optional precomputed profile **of this circuit** (saves
                recomputation when the caller already profiled it).  A
                profile whose identifying counts don't match the circuit is
                rejected, and a supplied profile participates in the cache
                key by content digest, so it can never poison the
                profile-less entry.
            keep_routed_circuit: Set to False to keep only the counts — the
                returned result and the cache entry both drop the physical
                circuit, so sweep-scale memoization stays light.  A later
                call with True on a counts-only entry recomputes (and
                upgrades the entry).
        """
        from repro.mapping.router import MappingResult, verify_routing

        # O(1) identity checks only — this guard runs on every route call,
        # including cache hits.
        if profile is not None and (
            profile.circuit_name != circuit.name
            or profile.num_qubits != circuit.num_qubits
            or profile.num_gates != len(circuit)
        ):
            raise ValueError(
                f"profile {profile.circuit_name!r} does not describe circuit "
                f"{circuit.name!r}; pass the circuit's own profile (or None)"
            )
        circuit_key = circuit_cache_key(circuit)
        key = (
            circuit_key,
            architecture_cache_key(architecture),
            self.parameters,
            profile_cache_key(profile),
        )
        gates = circuit.gates

        def sufficient(entry) -> bool:
            # entry.gates is None for entries restored from a persisted
            # cache (digest-trusted); in-memory entries carry the exact
            # tuple and are confirmed against the requesting circuit.
            if entry.gates is not None and entry.gates is not gates and entry.gates != gates:
                return False  # content-hash collision; recompute under this key
            return entry.result.routed_circuit is not None or not keep_routed_circuit

        cached = self.cache.lookup(key, sufficient)
        if cached is not None:
            return _result_copy(cached.result, keep_routed_circuit)

        compute_start = time.perf_counter()
        router = self.router_for(architecture)
        if not router.distances.is_connected():
            raise ValueError(
                f"architecture {architecture.name!r} has a disconnected coupling graph; "
                "every benchmark in the paper is mapped onto connected chips"
            )
        profile = profile or profile_circuit(circuit)
        mapping = initial_mapping(profile, architecture, router.distances)
        dag = self._dag_for(circuit, circuit_key)
        routed, num_swaps, final_mapping, used_initial = router.route_best(
            circuit, mapping, dag=dag
        )
        verify_routing(circuit, routed, architecture, used_initial, dag=dag)
        _metrics.observe("routing/route", time.perf_counter() - compute_start)
        _metrics.increment("routing/routes")
        _metrics.increment("routing/swaps", num_swaps)
        result = MappingResult(
            circuit_name=circuit.name,
            architecture_name=architecture.name,
            original_gates=len(circuit),
            original_two_qubit_gates=circuit.num_two_qubit_gates,
            num_swaps=num_swaps,
            initial_mapping=dict(used_initial),
            final_mapping=dict(final_mapping),
            routed_circuit=routed if keep_routed_circuit else None,
        )
        self.cache.put(key, _CacheEntry(gates=gates, result=result))
        return _result_copy(result, keep_routed_circuit)


# JSON key codecs, shared with every persisted cache.
_listify = persistence.listify
_tuplify = persistence.tuplify


def _parameters_to_dict(parameters: SabreParameters) -> Dict:
    from dataclasses import asdict

    return asdict(parameters)


def _parameters_from_dict(data: Dict) -> SabreParameters:
    return SabreParameters(**data)


def _result_copy(result, keep_routed_circuit: bool):
    """A caller-owned copy of a cached result (mappings and circuit detached)."""
    from repro.mapping.router import MappingResult

    return MappingResult(
        circuit_name=result.circuit_name,
        architecture_name=result.architecture_name,
        original_gates=result.original_gates,
        original_two_qubit_gates=result.original_two_qubit_gates,
        num_swaps=result.num_swaps,
        initial_mapping=dict(result.initial_mapping),
        final_mapping=dict(result.final_mapping),
        routed_circuit=result.routed_circuit.copy() if keep_routed_circuit else None,
    )
