"""SABRE-style look-ahead SWAP routing.

This reimplements the heuristic search of Li, Ding, Xie (ASPLOS 2019),
the mapper the paper uses as its performance oracle.  Starting from an
initial logical-to-physical mapping, the router repeatedly:

1. executes every gate in the dependency front layer whose operands are
   mapped to directly coupled physical qubits (single-qubit gates and
   measurements are always executable);
2. when the front layer is blocked, evaluates candidate SWAPs on physical
   couplings adjacent to the blocked gates and applies the one minimizing
   a distance-based cost that mixes the front layer with an *extended set*
   of upcoming two-qubit gates, damped by a decay factor that discourages
   ping-ponging on the same qubits.

Candidate SWAPs are scored **incrementally**.  The pre-refactor router
copied the full logical-to-physical dict per candidate and re-walked the
whole front layer; here, the front and extended-set gates become *slot
tables* (current distance-matrix endpoint indices per gate, plus base
cost sums and a reverse index from physical position to slots), rebuilt
only when gates execute.  A candidate swap then only rescores the few
slots its two endpoints touch — O(affected gates) per candidate instead
of O(front + extended) — and the applied swap updates the tables in
place.  The arithmetic reproduces the full recomputation bit-for-bit
(coupling distances are small integers, so the cost sums are exact).

Two refinements from the original SABRE work sit behind
:class:`SabreParameters` knobs (:meth:`SabreRouter.route_best`):

* **bidirectional passes** — route forward, then route the reversed
  circuit starting from the final mapping, then forward again; each pass
  seeds the next pass's initial mapping, letting the mapping adapt to
  both ends of the circuit;
* **seeded restarts** — best-of-k over deterministically perturbed
  initial mappings.

The output records the number of inserted SWAPs; the paper's performance
metric (total post-mapping gate count) charges three CNOTs per SWAP.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.dag import CircuitDAG, DAGNode, ExecutionFrontier
from repro.circuit.gates import Gate
from repro.hardware.architecture import Architecture
from repro.mapping.distance import DistanceMatrix
from repro.utils.rng import deterministic_rng


@dataclass(frozen=True)
class SabreParameters:
    """Tunable parameters of the SWAP search heuristic.

    Attributes:
        extended_set_size: How many upcoming two-qubit gates beyond the
            front layer participate in the cost (look-ahead window).
        extended_set_weight: Relative weight of the extended set term.
        decay_factor: Additional cost multiplier applied to swaps touching
            recently swapped qubits.
        decay_reset_interval: Number of swaps after which decay factors reset.
        max_swaps_per_gate: Safety valve: abort if the router inserts more
            than this many swaps per two-qubit gate (indicates a
            disconnected architecture or a heuristic livelock).
        passes: Number of routing passes in :meth:`SabreRouter.route_best`.
            Must be odd: passes alternate forward / reverse / forward ...,
            and only forward passes produce a usable routed circuit.
            ``1`` is the classic single forward pass; ``3`` is the
            forward-backward-forward refinement of the SABRE paper.
        restarts: Best-of-k restarts in :meth:`SabreRouter.route_best`.
            Restart 0 uses the caller's initial mapping verbatim; restarts
            1..k-1 apply seeded random transpositions to it.  The result
            with the fewest swaps (earliest restart on ties) wins.
        seed: Seed of the restart perturbations (ignored for ``restarts=1``).
        stall_threshold: Number of consecutive swaps without executing a
            gate after which the livelock escape hatch kicks in.  ``None``
            derives a threshold from the coupling-graph diameter.
    """

    extended_set_size: int = 20
    extended_set_weight: float = 0.5
    decay_factor: float = 0.001
    decay_reset_interval: int = 5
    max_swaps_per_gate: int = 64
    passes: int = 1
    restarts: int = 1
    seed: int = 11
    stall_threshold: Optional[int] = None

    def __post_init__(self) -> None:
        if self.passes < 1 or self.passes % 2 == 0:
            raise ValueError(
                f"passes must be a positive odd number (forward passes produce results, "
                f"reverse passes only refine the mapping); got {self.passes}"
            )
        if self.restarts < 1:
            raise ValueError(f"restarts must be >= 1, got {self.restarts}")
        if self.stall_threshold is not None and self.stall_threshold < 0:
            raise ValueError(f"stall_threshold must be >= 0, got {self.stall_threshold}")


class SabreRouter:
    """Routes a circuit onto an architecture, inserting SWAPs as needed.

    Construction builds the distance matrix and candidate-edge tables, so
    a router is worth reusing across circuits — the
    :class:`~repro.mapping.engine.RoutingEngine` keeps one per distinct
    architecture.

    Args:
        architecture: Target hardware architecture.
        parameters: Optional tuning parameters.
    """

    def __init__(
        self,
        architecture: Architecture,
        parameters: Optional[SabreParameters] = None,
    ) -> None:
        self.architecture = architecture
        self.parameters = parameters or SabreParameters()
        self.distances = DistanceMatrix(architecture)
        # Distance rows as plain nested lists: the scoring loops index a
        # handful of scalar entries per candidate, where list indexing beats
        # numpy scalar indexing by a wide margin.
        self._dist_rows: List[List[float]] = self.distances.array.tolist()
        self._coupled: set = set()
        for a, b in architecture.coupling_edges():
            self._coupled.add((a, b))
            self._coupled.add((b, a))
        # Candidate-edge tables, in distance-matrix index space.
        # coupling_edges() is sorted (a, b) with a < b, which fixes the
        # deterministic tie-break order of equal-score candidates.
        index_of = self.distances.index_of
        self._edges: List[Tuple[int, int]] = architecture.coupling_edges()
        self._edge_a: List[int] = [index_of(a) for a, _ in self._edges]
        self._edge_b: List[int] = [index_of(b) for _, b in self._edges]
        self._edges_at: Dict[int, List[int]] = {index_of(q): [] for q in architecture.qubits}
        for edge_index in range(len(self._edges)):
            self._edges_at[self._edge_a[edge_index]].append(edge_index)
            self._edges_at[self._edge_b[edge_index]].append(edge_index)

    # -- public API ------------------------------------------------------------

    def route(
        self,
        circuit: QuantumCircuit,
        initial_mapping: Dict[int, int],
        dag: Optional[CircuitDAG] = None,
    ) -> Tuple[QuantumCircuit, int, Dict[int, int]]:
        """Route ``circuit`` starting from ``initial_mapping`` (one forward pass).

        Args:
            circuit: Logical circuit (CNOT + single-qubit basis).
            initial_mapping: logical qubit -> physical qubit; must be injective
                and cover every logical qubit of the circuit.
            dag: Optional prebuilt dependency DAG of ``circuit`` (routing
                never mutates it, so one DAG serves any number of passes).

        Returns:
            ``(physical_circuit, num_swaps, final_mapping)`` where
            ``physical_circuit`` contains the original gates rewritten onto
            physical qubit indices with explicit ``swap`` gates inserted.
        """
        self._validate_mapping(circuit, initial_mapping)
        frontier = ExecutionFrontier(dag if dag is not None else CircuitDAG(circuit))
        logical_to_physical = dict(initial_mapping)
        physical_to_logical = {p: l for l, p in logical_to_physical.items()}
        index_of = self.distances.index_of
        # positions[l] = distance-matrix index of the physical qubit hosting
        # logical l; kept in lockstep with logical_to_physical.  The mapping
        # may carry extra logical keys beyond the circuit's register (they
        # pin physical qubits but never appear in a gate), so only circuit
        # logicals are tracked.
        positions: List[int] = [0] * circuit.num_qubits
        for logical, physical in logical_to_physical.items():
            if logical < circuit.num_qubits:
                positions[logical] = index_of(physical)

        max_physical = max(self.architecture.qubits) + 1
        routed = QuantumCircuit(max_physical, name=f"{circuit.name}@{self.architecture.name}")
        num_swaps = 0
        swap_budget = self.parameters.max_swaps_per_gate * max(1, circuit.num_two_qubit_gates)
        num_positions = len(self._dist_rows)
        decay: List[float] = [1.0] * num_positions
        decay_factor = self.parameters.decay_factor
        swaps_since_reset = 0
        swaps_since_progress = 0
        stall_threshold = self.parameters.stall_threshold
        if stall_threshold is None:
            stall_threshold = int(3 * self.distances.diameter()) + 8

        # Execute everything executable up front; from here on, gates only
        # become executable as a consequence of swaps.
        self._execute_ready_gates(frontier, logical_to_physical, routed)

        dist_rows = self._dist_rows
        while not frontier.done:
            # The blocked front and the extended look-ahead set only change
            # when gates execute, not when swaps are applied, so the slot
            # tables are rebuilt once per execution event rather than per
            # swap decision.
            blocked = [node for node in frontier.front_nodes() if node.two_qubit]
            if not blocked:
                # Only non-two-qubit gates remain but none executed: impossible,
                # since those are always executable.
                raise RuntimeError("router stalled with no blocked two-qubit gates")
            extended = frontier.lookahead_nodes(self.parameters.extended_set_size)

            # Slot tables: per pending gate (front first, then extended), the
            # distance-matrix indices its operands currently occupy, the base
            # front/extended cost sums, and a reverse index position -> slots.
            num_front = len(blocked)
            slot_a: List[int] = []
            slot_b: List[int] = []
            for node in blocked:
                qubit_a, qubit_b = node.gate.qubits
                slot_a.append(positions[qubit_a])
                slot_b.append(positions[qubit_b])
            for node in extended:
                qubit_a, qubit_b = node.gate.qubits
                slot_a.append(positions[qubit_a])
                slot_b.append(positions[qubit_b])
            base_front = 0.0
            for slot in range(num_front):
                base_front += dist_rows[slot_a[slot]][slot_b[slot]]
            base_extended = 0.0
            for slot in range(num_front, len(slot_a)):
                base_extended += dist_rows[slot_a[slot]][slot_b[slot]]
            slots_of: Dict[int, List[int]] = {}
            for slot in range(len(slot_a)):
                slots_of.setdefault(slot_a[slot], []).append(slot)
                slots_of.setdefault(slot_b[slot], []).append(slot)

            blocked_on: Dict[int, List[DAGNode]] = {}
            for node in blocked:
                for logical in node.gate.qubits:
                    blocked_on.setdefault(logical, []).append(node)

            while True:
                if swaps_since_progress >= stall_threshold:
                    # The heuristic is livelocking; force progress by walking
                    # the first blocked gate's operands together along a
                    # shortest path (making that gate executable).
                    num_swaps += self._force_route(
                        blocked[0], logical_to_physical, physical_to_logical, routed, positions
                    )
                    swaps_since_progress = 0
                    break

                chosen = self._choose_swap(
                    num_front, slot_a, slot_b, slots_of, base_front, base_extended, decay
                )
                if chosen is None:
                    raise RuntimeError(
                        f"no useful SWAP found; architecture {self.architecture.name!r} "
                        "may have a disconnected coupling graph"
                    )
                swap, swapped_a, swapped_b = chosen
                base_front, base_extended = self._shift_slots(
                    swapped_a, swapped_b, num_front, slot_a, slot_b, slots_of,
                    base_front, base_extended,
                )
                self._apply_swap(swap, logical_to_physical, physical_to_logical, routed, positions)
                num_swaps += 1
                swaps_since_reset += 1
                swaps_since_progress += 1
                decay[swapped_a] += decay_factor
                decay[swapped_b] += decay_factor
                if swaps_since_reset >= self.parameters.decay_reset_interval:
                    decay = [1.0] * num_positions
                    swaps_since_reset = 0
                if num_swaps > swap_budget:
                    raise RuntimeError(
                        f"router exceeded swap budget ({swap_budget}); "
                        "the architecture is likely not routable"
                    )
                # Only blocked gates holding a logical qubit the swap moved can
                # have become executable; checking those few gates avoids a
                # full front rescan per swap.
                if self._swap_unblocked(swap, blocked_on, logical_to_physical,
                                        physical_to_logical):
                    swaps_since_progress = 0
                    break

            self._execute_ready_gates(frontier, logical_to_physical, routed)

        return routed, num_swaps, logical_to_physical

    def route_best(
        self,
        circuit: QuantumCircuit,
        initial_mapping: Dict[int, int],
        dag: Optional[CircuitDAG] = None,
    ) -> Tuple[QuantumCircuit, int, Dict[int, int], Dict[int, int]]:
        """Best routing over bidirectional passes and seeded restarts.

        Runs ``parameters.restarts`` restart chains; each chain routes
        ``parameters.passes`` alternating forward / reverse passes, feeding
        every pass's final mapping into the next pass as its initial
        mapping.  Every *forward* pass yields a candidate result for the
        original circuit; the candidate with the fewest swaps wins, with
        ties resolved toward the earliest (restart, pass) so that the
        default ``passes=1, restarts=1`` reproduces :meth:`route` exactly.

        Returns:
            ``(physical_circuit, num_swaps, final_mapping, used_initial_mapping)``
            where ``used_initial_mapping`` is the initial mapping of the
            winning forward pass (replaying the routed circuit from it
            reproduces the logical circuit).
        """
        self._validate_mapping(circuit, initial_mapping)
        params = self.parameters
        if dag is None:
            dag = CircuitDAG(circuit)
        reversed_circuit: Optional[QuantumCircuit] = None
        reversed_dag: Optional[CircuitDAG] = None
        if params.passes > 1:
            reversed_circuit = QuantumCircuit(circuit.num_qubits, name=f"{circuit.name}~reversed")
            reversed_circuit.extend(reversed(circuit.gates))
            reversed_dag = CircuitDAG(reversed_circuit)

        best: Optional[Tuple[QuantumCircuit, int, Dict[int, int], Dict[int, int]]] = None
        for restart in range(params.restarts):
            mapping = (
                dict(initial_mapping)
                if restart == 0
                else self._perturbed_mapping(initial_mapping, restart)
            )
            for pass_index in range(params.passes):
                forward = pass_index % 2 == 0
                source = circuit if forward else reversed_circuit
                routed, num_swaps, final_mapping = self.route(
                    source, mapping, dag=dag if forward else reversed_dag
                )
                if forward and (best is None or num_swaps < best[1]):
                    best = (routed, num_swaps, dict(final_mapping), dict(mapping))
                mapping = final_mapping
        assert best is not None  # params.passes >= 1 guarantees a forward pass
        return best

    def _perturbed_mapping(self, initial_mapping: Dict[int, int], restart: int) -> Dict[int, int]:
        """A deterministic perturbation of ``initial_mapping`` for restart > 0.

        Applies ``1 + restart`` random transpositions of physical qubits
        (occupied or free), seeded from the router parameters and the
        restart index only — never from process or schedule state — so
        parallel sweeps stay byte-identical across worker counts.
        """
        mapping = dict(initial_mapping)
        qubits = self.architecture.qubits
        if len(qubits) < 2:
            return mapping  # nothing to transpose on a degenerate chip
        rng = deterministic_rng("sabre-restart", self.parameters.seed, restart)
        physical_to_logical = {p: l for l, p in mapping.items()}
        for _ in range(1 + restart):
            phys_a, phys_b = (int(qubits[i]) for i in rng.choice(len(qubits), 2, replace=False))
            logical_a = physical_to_logical.get(phys_a)
            logical_b = physical_to_logical.get(phys_b)
            if logical_a is not None:
                mapping[logical_a] = phys_b
                physical_to_logical[phys_b] = logical_a
            else:
                physical_to_logical.pop(phys_b, None)
            if logical_b is not None:
                mapping[logical_b] = phys_a
                physical_to_logical[phys_a] = logical_b
            else:
                physical_to_logical.pop(phys_a, None)
        return mapping

    def _force_route(
        self,
        node: DAGNode,
        logical_to_physical: Dict[int, int],
        physical_to_logical: Dict[int, int],
        routed: QuantumCircuit,
        positions: Optional[List[int]] = None,
    ) -> int:
        """Move the operands of ``node`` adjacent via greedy shortest-path swaps.

        Used only as a livelock escape hatch; returns the number of swaps applied.
        """
        logical_a, logical_b = node.gate.qubits
        applied = 0
        while True:
            phys_a = logical_to_physical[logical_a]
            phys_b = logical_to_physical[logical_b]
            current = self.distances.distance(phys_a, phys_b)
            if current <= 1:
                return applied
            step = min(
                (n for n in self.architecture.neighbors(phys_a)
                 if self.distances.distance(n, phys_b) < current),
                default=None,
            )
            if step is None:
                raise RuntimeError(
                    "cannot route gate: coupling graph is disconnected between "
                    f"physical qubits {phys_a} and {phys_b}"
                )
            self._apply_swap(
                (phys_a, step), logical_to_physical, physical_to_logical, routed, positions
            )
            applied += 1

    # -- internals ----------------------------------------------------------------

    def _validate_mapping(self, circuit: QuantumCircuit, mapping: Dict[int, int]) -> None:
        physical = set(self.architecture.qubits)
        for logical in range(circuit.num_qubits):
            if logical not in mapping:
                raise ValueError(f"initial mapping misses logical qubit {logical}")
        # Injectivity and target validity must hold across the WHOLE mapping,
        # extra logical keys included: an extra key sharing a physical qubit
        # with a circuit logical corrupts the inverse mapping and livelocks
        # the router.
        for logical, target in mapping.items():
            if target not in physical:
                raise ValueError(
                    f"logical qubit {logical} mapped to unknown physical qubit {target}"
                )
        targets = list(mapping.values())
        if len(set(targets)) != len(targets):
            raise ValueError("initial mapping maps two logical qubits to the same physical qubit")

    def _execute_ready_gates(
        self,
        frontier: ExecutionFrontier,
        logical_to_physical: Dict[int, int],
        routed: QuantumCircuit,
    ) -> bool:
        """Execute every currently executable gate; return True if any executed.

        Executing a gate never changes the mapping, so one pass over the
        front plus the transitively unblocked nodes reaches closure — no
        rescan of already-rejected front gates is needed.
        """
        executed_any = False
        queue = deque(frontier.front_nodes())
        append = routed.append_unchecked
        while queue:
            node = queue.popleft()
            if self._is_executable(node, logical_to_physical):
                append(node.gate.remap(logical_to_physical))
                queue.extend(frontier.execute(node.index))
                executed_any = True
        return executed_any

    def _is_executable(self, node: DAGNode, logical_to_physical: Dict[int, int]) -> bool:
        if not node.two_qubit:
            return True
        a, b = node.gate.qubits
        return (logical_to_physical[a], logical_to_physical[b]) in self._coupled

    def _swap_unblocked(
        self,
        swap: Tuple[int, int],
        blocked_on: Dict[int, List[DAGNode]],
        logical_to_physical: Dict[int, int],
        physical_to_logical: Dict[int, int],
    ) -> bool:
        """True when the just-applied ``swap`` made any blocked gate executable."""
        for physical in swap:
            logical = physical_to_logical.get(physical)
            if logical is None:
                continue
            for node in blocked_on.get(logical, ()):
                if self._is_executable(node, logical_to_physical):
                    return True
        return False

    def _choose_swap(
        self,
        num_front: int,
        slot_a: List[int],
        slot_b: List[int],
        slots_of: Dict[int, List[int]],
        base_front: float,
        base_extended: float,
        decay: List[float],
    ) -> Optional[Tuple[Tuple[int, int], int, int]]:
        """The candidate SWAP minimizing the look-ahead distance cost.

        Incremental delta scoring: a candidate swap of positions (ia, ib)
        changes the cost of exactly the slots listed under ia or ib in
        ``slots_of``, so each candidate accumulates distance deltas over
        those few slots against the base sums instead of rescoring the
        whole front and extended set.  Distances are small integers, so
        ``base + delta`` equals the full recomputation bit-for-bit and the
        deterministic (score, swap-pair) tie-break is preserved.

        Returns ``(swap pair, index of a, index of b)``, or None when no
        coupling edge touches the front layer.
        """
        involved = set(slot_a[:num_front])
        involved.update(slot_b[:num_front])
        edges_at = self._edges_at
        candidate_ids = sorted({e for q in involved for e in edges_at[q]})
        if not candidate_ids:
            return None

        dist_rows = self._dist_rows
        edge_a = self._edge_a
        edge_b = self._edge_b
        edges = self._edges
        weight = self.parameters.extended_set_weight
        front_div = max(1, num_front)
        num_extended = len(slot_a) - num_front

        best_key = None
        best = None
        best_improving_key = None
        best_improving = None
        for edge_index in candidate_ids:
            index_a = edge_a[edge_index]
            index_b = edge_b[edge_index]
            delta_front = 0.0
            delta_extended = 0.0
            slots_at_a = slots_of.get(index_a)
            slots_at_b = slots_of.get(index_b)
            if slots_at_a:
                for slot in slots_at_a:
                    pos_a = slot_a[slot]
                    pos_b = slot_b[slot]
                    new_a = index_b if pos_a == index_a else (index_a if pos_a == index_b else pos_a)
                    new_b = index_b if pos_b == index_a else (index_a if pos_b == index_b else pos_b)
                    delta = dist_rows[new_a][new_b] - dist_rows[pos_a][pos_b]
                    if slot < num_front:
                        delta_front += delta
                    else:
                        delta_extended += delta
            if slots_at_b:
                for slot in slots_at_b:
                    pos_a = slot_a[slot]
                    pos_b = slot_b[slot]
                    if pos_a == index_a or pos_b == index_a:
                        continue  # gate spans both endpoints; counted above
                    new_a = index_a if pos_a == index_b else pos_a
                    new_b = index_a if pos_b == index_b else pos_b
                    delta = dist_rows[new_a][new_b] - dist_rows[pos_a][pos_b]
                    if slot < num_front:
                        delta_front += delta
                    else:
                        delta_extended += delta

            score = (base_front + delta_front) / front_div
            if num_extended:
                score += weight * (base_extended + delta_extended) / num_extended
            decay_a = decay[index_a]
            decay_b = decay[index_b]
            score *= decay_a if decay_a >= decay_b else decay_b

            key = (score, edges[edge_index])
            if best_key is None or key < best_key:
                best_key = key
                best = (edges[edge_index], index_a, index_b)
            if delta_front < 0.0 and (best_improving_key is None or key < best_improving_key):
                best_improving_key = key
                best_improving = (edges[edge_index], index_a, index_b)

        # Swaps that do not reduce the front-layer cost at all only stay in
        # the running when no candidate reduces it (they can still win on
        # the extended set, but must not displace genuine progress).
        return best_improving if best_improving is not None else best

    def _shift_slots(
        self,
        index_a: int,
        index_b: int,
        num_front: int,
        slot_a: List[int],
        slot_b: List[int],
        slots_of: Dict[int, List[int]],
        base_front: float,
        base_extended: float,
    ) -> Tuple[float, float]:
        """Apply a position swap (ia, ib) to the slot tables in place.

        Rewrites the affected slots' endpoint indices, exchanges the two
        reverse-index buckets, and returns the updated base cost sums.
        """
        dist_rows = self._dist_rows
        affected = set(slots_of.get(index_a, ()))
        affected.update(slots_of.get(index_b, ()))
        for slot in affected:
            pos_a = slot_a[slot]
            pos_b = slot_b[slot]
            new_a = index_b if pos_a == index_a else (index_a if pos_a == index_b else pos_a)
            new_b = index_b if pos_b == index_a else (index_a if pos_b == index_b else pos_b)
            delta = dist_rows[new_a][new_b] - dist_rows[pos_a][pos_b]
            slot_a[slot] = new_a
            slot_b[slot] = new_b
            if slot < num_front:
                base_front += delta
            else:
                base_extended += delta
        bucket_a = slots_of.pop(index_a, None)
        bucket_b = slots_of.pop(index_b, None)
        if bucket_b is not None:
            slots_of[index_a] = bucket_b
        if bucket_a is not None:
            slots_of[index_b] = bucket_a
        return base_front, base_extended

    def _apply_swap(
        self,
        swap: Tuple[int, int],
        logical_to_physical: Dict[int, int],
        physical_to_logical: Dict[int, int],
        routed: QuantumCircuit,
        positions: Optional[List[int]] = None,
    ) -> None:
        phys_a, phys_b = swap
        logical_a = physical_to_logical.get(phys_a)
        logical_b = physical_to_logical.get(phys_b)
        routed.append_unchecked(Gate("swap", (phys_a, phys_b)))
        if logical_a is not None:
            logical_to_physical[logical_a] = phys_b
            if positions is not None and logical_a < len(positions):
                positions[logical_a] = self.distances.index_of(phys_b)
        if logical_b is not None:
            logical_to_physical[logical_b] = phys_a
            if positions is not None and logical_b < len(positions):
                positions[logical_b] = self.distances.index_of(phys_a)
        if logical_a is not None:
            physical_to_logical[phys_b] = logical_a
        else:
            physical_to_logical.pop(phys_b, None)
        if logical_b is not None:
            physical_to_logical[phys_a] = logical_b
        else:
            physical_to_logical.pop(phys_a, None)
