"""SABRE-style look-ahead SWAP routing.

This reimplements the heuristic search of Li, Ding, Xie (ASPLOS 2019),
the mapper the paper uses as its performance oracle.  Starting from an
initial logical-to-physical mapping, the router repeatedly:

1. executes every gate in the dependency front layer whose operands are
   mapped to directly coupled physical qubits (single-qubit gates and
   measurements are always executable);
2. when the front layer is blocked, evaluates candidate SWAPs on physical
   couplings adjacent to the blocked gates and applies the one minimizing
   a distance-based cost that mixes the front layer with an *extended set*
   of upcoming two-qubit gates, damped by a decay factor that discourages
   ping-ponging on the same qubits.

The output records the number of inserted SWAPs; the paper's performance
metric (total post-mapping gate count) charges three CNOTs per SWAP.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.dag import CircuitDAG, DAGNode, ExecutionFrontier
from repro.circuit.gates import Gate
from repro.hardware.architecture import Architecture
from repro.mapping.distance import DistanceMatrix


@dataclass(frozen=True)
class SabreParameters:
    """Tunable parameters of the SWAP search heuristic.

    Attributes:
        extended_set_size: How many upcoming two-qubit gates beyond the
            front layer participate in the cost (look-ahead window).
        extended_set_weight: Relative weight of the extended set term.
        decay_factor: Additional cost multiplier applied to swaps touching
            recently swapped qubits.
        decay_reset_interval: Number of swaps after which decay factors reset.
        max_swaps_per_gate: Safety valve: abort if the router inserts more
            than this many swaps per two-qubit gate (indicates a
            disconnected architecture or a heuristic livelock).
    """

    extended_set_size: int = 20
    extended_set_weight: float = 0.5
    decay_factor: float = 0.001
    decay_reset_interval: int = 5
    max_swaps_per_gate: int = 64


class SabreRouter:
    """Routes a circuit onto an architecture, inserting SWAPs as needed."""

    def __init__(
        self,
        architecture: Architecture,
        parameters: Optional[SabreParameters] = None,
    ) -> None:
        self.architecture = architecture
        self.parameters = parameters or SabreParameters()
        self.distances = DistanceMatrix(architecture)
        self._coupled: Set[Tuple[int, int]] = set()
        for a, b in architecture.coupling_edges():
            self._coupled.add((a, b))
            self._coupled.add((b, a))

    # -- public API ------------------------------------------------------------

    def route(
        self,
        circuit: QuantumCircuit,
        initial_mapping: Dict[int, int],
    ) -> Tuple[QuantumCircuit, int, Dict[int, int]]:
        """Route ``circuit`` starting from ``initial_mapping``.

        Args:
            circuit: Logical circuit (CNOT + single-qubit basis).
            initial_mapping: logical qubit -> physical qubit; must be injective
                and cover every logical qubit of the circuit.

        Returns:
            ``(physical_circuit, num_swaps, final_mapping)`` where
            ``physical_circuit`` contains the original gates rewritten onto
            physical qubit indices with explicit ``swap`` gates inserted.
        """
        self._validate_mapping(circuit, initial_mapping)
        dag = CircuitDAG(circuit)
        frontier = ExecutionFrontier(dag)
        logical_to_physical = dict(initial_mapping)
        physical_to_logical = {p: l for l, p in logical_to_physical.items()}

        max_physical = max(self.architecture.qubits) + 1
        routed = QuantumCircuit(max_physical, name=f"{circuit.name}@{self.architecture.name}")
        num_swaps = 0
        swap_budget = self.parameters.max_swaps_per_gate * max(1, circuit.num_two_qubit_gates)
        decay: Dict[int, float] = {q: 1.0 for q in self.architecture.qubits}
        swaps_since_reset = 0
        swaps_since_progress = 0
        stall_threshold = int(3 * self.distances.diameter()) + 8

        while not frontier.done:
            executed_any = self._execute_ready_gates(frontier, logical_to_physical, routed)
            if frontier.done:
                break
            if executed_any:
                swaps_since_progress = 0
                continue

            blocked = [node for node in frontier.front_nodes() if node.gate.is_two_qubit]
            if not blocked:
                # Only non-two-qubit gates remain but none executed: impossible,
                # since those are always executable.
                raise RuntimeError("router stalled with no blocked two-qubit gates")

            if swaps_since_progress >= stall_threshold:
                # The heuristic is livelocking; force progress by walking the
                # first blocked gate's operands together along a shortest path.
                num_swaps += self._force_route(
                    blocked[0], logical_to_physical, physical_to_logical, routed
                )
                swaps_since_progress = 0
                continue

            swap = self._choose_swap(blocked, frontier, logical_to_physical, decay)
            if swap is None:
                raise RuntimeError(
                    f"no useful SWAP found; architecture {self.architecture.name!r} may have a "
                    "disconnected coupling graph"
                )
            self._apply_swap(swap, logical_to_physical, physical_to_logical, routed)
            num_swaps += 1
            swaps_since_reset += 1
            swaps_since_progress += 1
            for qubit in swap:
                decay[qubit] = decay.get(qubit, 1.0) + self.parameters.decay_factor
            if swaps_since_reset >= self.parameters.decay_reset_interval:
                decay = {q: 1.0 for q in self.architecture.qubits}
                swaps_since_reset = 0
            if num_swaps > swap_budget:
                raise RuntimeError(
                    f"router exceeded swap budget ({swap_budget}); "
                    "the architecture is likely not routable"
                )

        return routed, num_swaps, logical_to_physical

    def _force_route(
        self,
        node: DAGNode,
        logical_to_physical: Dict[int, int],
        physical_to_logical: Dict[int, int],
        routed: QuantumCircuit,
    ) -> int:
        """Move the operands of ``node`` adjacent via greedy shortest-path swaps.

        Used only as a livelock escape hatch; returns the number of swaps applied.
        """
        logical_a, logical_b = node.gate.qubits
        applied = 0
        while True:
            phys_a = logical_to_physical[logical_a]
            phys_b = logical_to_physical[logical_b]
            current = self.distances.distance(phys_a, phys_b)
            if current <= 1:
                return applied
            step = min(
                (n for n in self.architecture.neighbors(phys_a)
                 if self.distances.distance(n, phys_b) < current),
                default=None,
            )
            if step is None:
                raise RuntimeError(
                    "cannot route gate: coupling graph is disconnected between "
                    f"physical qubits {phys_a} and {phys_b}"
                )
            self._apply_swap((phys_a, step), logical_to_physical, physical_to_logical, routed)
            applied += 1

    # -- internals ----------------------------------------------------------------

    def _validate_mapping(self, circuit: QuantumCircuit, mapping: Dict[int, int]) -> None:
        physical = set(self.architecture.qubits)
        for logical in range(circuit.num_qubits):
            if logical not in mapping:
                raise ValueError(f"initial mapping misses logical qubit {logical}")
            if mapping[logical] not in physical:
                raise ValueError(
                    f"logical qubit {logical} mapped to unknown physical qubit {mapping[logical]}"
                )
        targets = [mapping[l] for l in range(circuit.num_qubits)]
        if len(set(targets)) != len(targets):
            raise ValueError("initial mapping maps two logical qubits to the same physical qubit")

    def _execute_ready_gates(
        self,
        frontier: ExecutionFrontier,
        logical_to_physical: Dict[int, int],
        routed: QuantumCircuit,
    ) -> bool:
        """Execute every currently executable gate; return True if any executed."""
        executed_any = False
        progress = True
        while progress:
            progress = False
            for node in frontier.front_nodes():
                if self._is_executable(node.gate, logical_to_physical):
                    routed.append(node.gate.remap(logical_to_physical))
                    frontier.execute(node.index)
                    executed_any = True
                    progress = True
        return executed_any

    def _is_executable(self, gate: Gate, logical_to_physical: Dict[int, int]) -> bool:
        if not gate.is_two_qubit:
            return True
        a, b = gate.qubits
        return (logical_to_physical[a], logical_to_physical[b]) in self._coupled

    def _choose_swap(
        self,
        blocked: Sequence[DAGNode],
        frontier: ExecutionFrontier,
        logical_to_physical: Dict[int, int],
        decay: Dict[int, float],
    ) -> Optional[Tuple[int, int]]:
        """The candidate SWAP minimizing the look-ahead distance cost."""
        involved_physical = set()
        for node in blocked:
            for logical in node.gate.qubits:
                involved_physical.add(logical_to_physical[logical])
        candidates = [
            (a, b)
            for a, b in self.architecture.coupling_edges()
            if a in involved_physical or b in involved_physical
        ]
        if not candidates:
            return None

        extended = frontier.lookahead_nodes(self.parameters.extended_set_size)
        physical_to_logical = {p: l for l, p in logical_to_physical.items()}

        best_swap = None
        best_score = None
        baseline_front = self._front_cost(blocked, logical_to_physical)
        for swap in candidates:
            trial = dict(logical_to_physical)
            self._swap_mapping(swap, trial, physical_to_logical)
            front_cost = self._front_cost(blocked, trial)
            if front_cost >= baseline_front and len(candidates) > 1:
                # A swap that does not help the front layer at all is only
                # considered if nothing else is available.
                pass
            extended_cost = self._front_cost(extended, trial) if extended else 0.0
            score = front_cost / max(1, len(blocked))
            if extended:
                score += self.parameters.extended_set_weight * extended_cost / len(extended)
            score *= max(decay.get(swap[0], 1.0), decay.get(swap[1], 1.0))
            key = (score, swap)
            if best_score is None or key < best_score:
                best_score = key
                best_swap = swap
        return best_swap

    def _front_cost(
        self, nodes: Sequence[DAGNode], logical_to_physical: Dict[int, int]
    ) -> float:
        cost = 0.0
        for node in nodes:
            if not node.gate.is_two_qubit:
                continue
            a, b = node.gate.qubits
            cost += self.distances.distance(logical_to_physical[a], logical_to_physical[b])
        return cost

    @staticmethod
    def _swap_mapping(
        swap: Tuple[int, int],
        logical_to_physical: Dict[int, int],
        physical_to_logical: Dict[int, int],
    ) -> None:
        """Apply ``swap`` (a pair of physical qubits) to a trial mapping in place.

        ``physical_to_logical`` here is the *pre-swap* inverse and is only read,
        never mutated, so the caller can reuse it across trial swaps.
        """
        phys_a, phys_b = swap
        logical_a = physical_to_logical.get(phys_a)
        logical_b = physical_to_logical.get(phys_b)
        if logical_a is not None:
            logical_to_physical[logical_a] = phys_b
        if logical_b is not None:
            logical_to_physical[logical_b] = phys_a

    def _apply_swap(
        self,
        swap: Tuple[int, int],
        logical_to_physical: Dict[int, int],
        physical_to_logical: Dict[int, int],
        routed: QuantumCircuit,
    ) -> None:
        phys_a, phys_b = swap
        logical_a = physical_to_logical.get(phys_a)
        logical_b = physical_to_logical.get(phys_b)
        routed.append(Gate("swap", (phys_a, phys_b)))
        if logical_a is not None:
            logical_to_physical[logical_a] = phys_b
        if logical_b is not None:
            logical_to_physical[logical_b] = phys_a
        if logical_a is not None:
            physical_to_logical[phys_b] = logical_a
        else:
            physical_to_logical.pop(phys_b, None)
        if logical_b is not None:
            physical_to_logical[phys_a] = logical_b
        else:
            physical_to_logical.pop(phys_a, None)
