"""Public entry point of the qubit mapping substrate.

:func:`route_circuit` maps a logical circuit onto an architecture and
returns a :class:`MappingResult` carrying the performance metric the
paper uses throughout Section 5: the total post-mapping gate count, where
each inserted SWAP costs three CNOTs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.circuit.circuit import QuantumCircuit
from repro.hardware.architecture import Architecture
from repro.mapping.sabre import SabreParameters
from repro.profiling.profiler import CircuitProfile

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.circuit.dag import CircuitDAG
    from repro.mapping.engine import RoutingEngine

#: Number of CNOT gates required to implement one SWAP on hardware.
CNOTS_PER_SWAP = 3


@dataclass
class MappingResult:
    """Outcome of mapping a circuit onto an architecture.

    Attributes:
        circuit_name: Name of the mapped circuit.
        architecture_name: Name of the target architecture.
        original_gates: Gate count of the input circuit (all gate kinds).
        original_two_qubit_gates: Two-qubit gate count of the input circuit.
        num_swaps: SWAPs inserted by the router.
        initial_mapping: The logical -> physical mapping the router started from.
        final_mapping: The mapping after the last routed gate.
        routed_circuit: The physical circuit including explicit swap gates.
    """

    circuit_name: str
    architecture_name: str
    original_gates: int
    original_two_qubit_gates: int
    num_swaps: int
    initial_mapping: Dict[int, int]
    final_mapping: Dict[int, int]
    routed_circuit: Optional[QuantumCircuit] = None

    # With bidirectional passes or restarts enabled, ``initial_mapping`` is
    # the initial mapping of the *winning* forward pass (the mapping from
    # which replaying ``routed_circuit`` reproduces the logical circuit),
    # which may differ from the profile-driven placement the search began at.

    @property
    def total_gates(self) -> int:
        """Total post-mapping gate count (the paper's performance metric).

        Every original gate survives mapping unchanged; each inserted SWAP
        is charged as three CNOTs.
        """
        return self.original_gates + CNOTS_PER_SWAP * self.num_swaps

    @property
    def total_two_qubit_gates(self) -> int:
        """Post-mapping two-qubit gate count."""
        return self.original_two_qubit_gates + CNOTS_PER_SWAP * self.num_swaps

    @property
    def overhead_gates(self) -> int:
        """Gates added by routing."""
        return CNOTS_PER_SWAP * self.num_swaps

    @property
    def overhead_ratio(self) -> float:
        """Routing overhead relative to the original gate count."""
        return self.overhead_gates / self.original_gates if self.original_gates else 0.0

    def summary(self) -> Dict[str, object]:
        return {
            "circuit": self.circuit_name,
            "architecture": self.architecture_name,
            "original_gates": self.original_gates,
            "num_swaps": self.num_swaps,
            "total_gates": self.total_gates,
            "overhead_ratio": round(self.overhead_ratio, 4),
        }


def route_circuit(
    circuit: QuantumCircuit,
    architecture: Architecture,
    profile: Optional[CircuitProfile] = None,
    parameters: Optional[SabreParameters] = None,
    keep_routed_circuit: bool = True,
    engine: Optional["RoutingEngine"] = None,
) -> MappingResult:
    """Map ``circuit`` onto ``architecture`` and report the gate-count metric.

    Args:
        circuit: Logical circuit in the CNOT + single-qubit basis.
        architecture: Target hardware architecture.
        profile: Optional precomputed profile (saves recomputation when the
            caller already profiled the circuit).
        parameters: Optional router tuning parameters (must be omitted when
            ``engine`` is given; the engine's parameters apply).
        keep_routed_circuit: Set to False to drop the physical circuit and
            keep only the counts (saves memory in large sweeps).
        engine: Optional :class:`~repro.mapping.engine.RoutingEngine` to
            route through; shares per-architecture state and memoizes
            results across calls.  Without one, a throwaway engine is used
            (identical results, no reuse).
    """
    from repro.mapping.engine import RoutingEngine

    if engine is None:
        engine = RoutingEngine(parameters)
    elif parameters is not None and parameters != engine.parameters:
        raise ValueError(
            "pass routing parameters either directly or via the engine, not both"
        )
    return engine.route(
        circuit, architecture, profile=profile, keep_routed_circuit=keep_routed_circuit
    )


def verify_routing(
    logical: QuantumCircuit,
    routed: QuantumCircuit,
    architecture: Architecture,
    initial_mapping: Dict[int, int],
    dag: Optional["CircuitDAG"] = None,
) -> None:
    """Check that a routed circuit is a faithful execution of the logical circuit.

    Verifications:

    * every two-qubit gate (including inserted swaps) acts on a coupled
      physical pair;
    * replaying the routed circuit while tracking swaps executes every
      logical gate exactly once, on the correct logical operands, and never
      violates the logical circuit's dependency order.

    The router may execute gates on disjoint qubits in a different order
    than the source circuit, so the replay checks against the dependency
    DAG rather than the literal gate sequence.

    The replay indexes the executable front by (gate name, logical
    operands, params), so each routed gate is matched in O(1) instead of
    rescanning the whole front layer — the full check is linear in the
    routed gate count.  Pass a prebuilt ``dag`` of the logical circuit to
    skip rebuilding it (the replay never mutates the DAG).

    Raises:
        AssertionError: When any check fails (this guards the evaluation
            pipeline against router bugs rather than user input errors).
    """
    from repro.circuit.dag import CircuitDAG, DAGNode, ExecutionFrontier

    coupled = set()
    for a, b in architecture.coupling_edges():
        coupled.add((a, b))
        coupled.add((b, a))

    physical_to_logical = {p: l for l, p in initial_mapping.items()}
    frontier = ExecutionFrontier(dag if dag is not None else CircuitDAG(logical))
    # Two front gates can never share (name, operands, params): identical
    # operands imply a dependency chain, so each bucket holds at most one
    # live node and popping the sole entry matches the gate deterministically.
    front_index: Dict[Tuple, List[int]] = {}

    def index_node(node: DAGNode) -> None:
        key = (node.gate.name, node.gate.qubits, node.gate.params)
        front_index.setdefault(key, []).append(node.index)

    for node in frontier.front_nodes():
        index_node(node)

    get_logical = physical_to_logical.get
    get_bucket = front_index.get
    execute = frontier.execute
    for gate in routed.gates:
        if gate.is_two_qubit and tuple(gate.qubits) not in coupled:
            raise AssertionError(
                f"routed gate {gate} acts on uncoupled physical qubits "
                f"on architecture {architecture.name!r}"
            )
        if gate.name == "swap":
            phys_a, phys_b = gate.qubits
            logical_a = get_logical(phys_a)
            logical_b = get_logical(phys_b)
            # A swap can be a gate of the *program* rather than a router
            # insertion.  Try the logical interpretation first; this is
            # unambiguous for router output, because an executable logical
            # swap in the front would have been executed before the router
            # ever inserted a swap of its own on that coupled pair.
            if logical_a is not None and logical_b is not None:
                bucket = get_bucket(("swap", (logical_a, logical_b), gate.params))
                if bucket:
                    for unblocked in execute(bucket.pop(0)):
                        index_node(unblocked)
                    continue
            if logical_a is not None:
                physical_to_logical[phys_b] = logical_a
            else:
                physical_to_logical.pop(phys_b, None)
            if logical_b is not None:
                physical_to_logical[phys_a] = logical_b
            else:
                physical_to_logical.pop(phys_a, None)
            continue
        try:
            recovered_operands = tuple([physical_to_logical[q] for q in gate.qubits])
        except KeyError:
            raise AssertionError(
                f"routed gate {gate} acts on a physical qubit hosting no logical qubit"
            ) from None
        bucket = get_bucket((gate.name, recovered_operands, gate.params))
        if not bucket:
            raise AssertionError(
                f"routed gate {gate} (logical operands {recovered_operands}) does not match "
                "any executable logical gate"
            )
        for unblocked in execute(bucket.pop(0)):
            index_node(unblocked)
    if frontier.remaining:
        raise AssertionError(
            f"routed circuit left {frontier.remaining} logical gates unexecuted"
        )
