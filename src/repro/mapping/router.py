"""Public entry point of the qubit mapping substrate.

:func:`route_circuit` maps a logical circuit onto an architecture and
returns a :class:`MappingResult` carrying the performance metric the
paper uses throughout Section 5: the total post-mapping gate count, where
each inserted SWAP costs three CNOTs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.circuit.circuit import QuantumCircuit
from repro.hardware.architecture import Architecture
from repro.mapping.distance import DistanceMatrix
from repro.mapping.initial import initial_mapping
from repro.mapping.sabre import SabreParameters, SabreRouter
from repro.profiling.profiler import CircuitProfile, profile_circuit

#: Number of CNOT gates required to implement one SWAP on hardware.
CNOTS_PER_SWAP = 3


@dataclass
class MappingResult:
    """Outcome of mapping a circuit onto an architecture.

    Attributes:
        circuit_name: Name of the mapped circuit.
        architecture_name: Name of the target architecture.
        original_gates: Gate count of the input circuit (all gate kinds).
        original_two_qubit_gates: Two-qubit gate count of the input circuit.
        num_swaps: SWAPs inserted by the router.
        initial_mapping: The logical -> physical mapping the router started from.
        final_mapping: The mapping after the last routed gate.
        routed_circuit: The physical circuit including explicit swap gates.
    """

    circuit_name: str
    architecture_name: str
    original_gates: int
    original_two_qubit_gates: int
    num_swaps: int
    initial_mapping: Dict[int, int]
    final_mapping: Dict[int, int]
    routed_circuit: Optional[QuantumCircuit] = None

    @property
    def total_gates(self) -> int:
        """Total post-mapping gate count (the paper's performance metric).

        Every original gate survives mapping unchanged; each inserted SWAP
        is charged as three CNOTs.
        """
        return self.original_gates + CNOTS_PER_SWAP * self.num_swaps

    @property
    def total_two_qubit_gates(self) -> int:
        """Post-mapping two-qubit gate count."""
        return self.original_two_qubit_gates + CNOTS_PER_SWAP * self.num_swaps

    @property
    def overhead_gates(self) -> int:
        """Gates added by routing."""
        return CNOTS_PER_SWAP * self.num_swaps

    @property
    def overhead_ratio(self) -> float:
        """Routing overhead relative to the original gate count."""
        return self.overhead_gates / self.original_gates if self.original_gates else 0.0

    def summary(self) -> Dict[str, object]:
        return {
            "circuit": self.circuit_name,
            "architecture": self.architecture_name,
            "original_gates": self.original_gates,
            "num_swaps": self.num_swaps,
            "total_gates": self.total_gates,
            "overhead_ratio": round(self.overhead_ratio, 4),
        }


def route_circuit(
    circuit: QuantumCircuit,
    architecture: Architecture,
    profile: Optional[CircuitProfile] = None,
    parameters: Optional[SabreParameters] = None,
    keep_routed_circuit: bool = True,
) -> MappingResult:
    """Map ``circuit`` onto ``architecture`` and report the gate-count metric.

    Args:
        circuit: Logical circuit in the CNOT + single-qubit basis.
        architecture: Target hardware architecture.
        profile: Optional precomputed profile (saves recomputation when the
            caller already profiled the circuit).
        parameters: Optional router tuning parameters.
        keep_routed_circuit: Set to False to drop the physical circuit and
            keep only the counts (saves memory in large sweeps).
    """
    profile = profile or profile_circuit(circuit)
    distances = DistanceMatrix(architecture)
    if not distances.is_connected():
        raise ValueError(
            f"architecture {architecture.name!r} has a disconnected coupling graph; "
            "every benchmark in the paper is mapped onto connected chips"
        )
    mapping = initial_mapping(profile, architecture, distances)
    router = SabreRouter(architecture, parameters)
    routed, num_swaps, final_mapping = router.route(circuit, mapping)
    verify_routing(circuit, routed, architecture, mapping)
    return MappingResult(
        circuit_name=circuit.name,
        architecture_name=architecture.name,
        original_gates=len(circuit),
        original_two_qubit_gates=circuit.num_two_qubit_gates,
        num_swaps=num_swaps,
        initial_mapping=dict(mapping),
        final_mapping=dict(final_mapping),
        routed_circuit=routed if keep_routed_circuit else None,
    )


def verify_routing(
    logical: QuantumCircuit,
    routed: QuantumCircuit,
    architecture: Architecture,
    initial_mapping: Dict[int, int],
) -> None:
    """Check that a routed circuit is a faithful execution of the logical circuit.

    Verifications:

    * every two-qubit gate (including inserted swaps) acts on a coupled
      physical pair;
    * replaying the routed circuit while tracking swaps executes every
      logical gate exactly once, on the correct logical operands, and never
      violates the logical circuit's dependency order.

    The router may execute gates on disjoint qubits in a different order
    than the source circuit, so the replay checks against the dependency
    DAG rather than the literal gate sequence.

    Raises:
        AssertionError: When any check fails (this guards the evaluation
            pipeline against router bugs rather than user input errors).
    """
    from repro.circuit.dag import CircuitDAG, ExecutionFrontier

    coupled = set()
    for a, b in architecture.coupling_edges():
        coupled.add((a, b))
        coupled.add((b, a))

    physical_to_logical = {p: l for l, p in initial_mapping.items()}
    frontier = ExecutionFrontier(CircuitDAG(logical))
    for gate in routed.gates:
        if gate.is_two_qubit and tuple(gate.qubits) not in coupled:
            raise AssertionError(
                f"routed gate {gate} acts on uncoupled physical qubits "
                f"on architecture {architecture.name!r}"
            )
        if gate.name == "swap":
            phys_a, phys_b = gate.qubits
            logical_a = physical_to_logical.get(phys_a)
            logical_b = physical_to_logical.get(phys_b)
            if logical_a is not None:
                physical_to_logical[phys_b] = logical_a
            else:
                physical_to_logical.pop(phys_b, None)
            if logical_b is not None:
                physical_to_logical[phys_a] = logical_b
            else:
                physical_to_logical.pop(phys_a, None)
            continue
        recovered_operands = tuple(physical_to_logical[q] for q in gate.qubits)
        match = None
        for node in frontier.front_nodes():
            if node.gate.name == gate.name and node.gate.qubits == recovered_operands \
                    and node.gate.params == gate.params:
                match = node
                break
        if match is None:
            raise AssertionError(
                f"routed gate {gate} (logical operands {recovered_operands}) does not match "
                "any executable logical gate"
            )
        frontier.execute(match.index)
    if not frontier.done:
        raise AssertionError(
            f"routed circuit left {frontier._dag.num_nodes - frontier.num_executed} "
            "logical gates unexecuted"
        )
