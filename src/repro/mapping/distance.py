"""All-pairs shortest-path distances on the chip coupling graph.

The SWAP router scores candidate swaps by how much they reduce the
coupling-graph distance between the physical qubits hosting the logical
operands of pending two-qubit gates, so it needs fast distance lookups.
Chips in this work have at most a few dozen qubits, so a dense BFS-based
distance matrix is both simple and fast.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List

import numpy as np

from repro.hardware.architecture import Architecture


class DistanceMatrix:
    """Dense shortest-path distance lookup over an architecture's coupling graph."""

    def __init__(self, architecture: Architecture) -> None:
        self._qubits: List[int] = architecture.qubits
        self._index_of: Dict[int, int] = {q: i for i, q in enumerate(self._qubits)}
        n = len(self._qubits)
        adjacency: Dict[int, List[int]] = {q: architecture.neighbors(q) for q in self._qubits}
        matrix = np.full((n, n), np.inf)
        for source in self._qubits:
            src = self._index_of[source]
            matrix[src, src] = 0
            queue = deque([source])
            seen = {source}
            while queue:
                current = queue.popleft()
                for neighbor in adjacency[current]:
                    if neighbor not in seen:
                        seen.add(neighbor)
                        matrix[src, self._index_of[neighbor]] = (
                            matrix[src, self._index_of[current]] + 1
                        )
                        queue.append(neighbor)
        matrix.setflags(write=False)
        self._matrix = matrix

    @property
    def qubits(self) -> List[int]:
        return list(self._qubits)

    @property
    def array(self) -> np.ndarray:
        """The distance matrix itself (read-only; rows/cols ordered by ``qubits``).

        The SWAP router scores thousands of candidate swaps per routed
        circuit, so it indexes this array directly instead of going through
        :meth:`distance`.
        """
        return self._matrix

    def index_of(self, physical: int) -> int:
        """Row/column index of a physical qubit in :attr:`array`."""
        return self._index_of[physical]

    def distance(self, physical_a: int, physical_b: int) -> float:
        """Shortest-path distance between two physical qubits (inf when disconnected)."""
        return float(self._matrix[self._index_of[physical_a], self._index_of[physical_b]])

    def is_connected(self) -> bool:
        """True when every pair of physical qubits is joined by a coupling path."""
        return bool(np.isfinite(self._matrix).all())

    def as_array(self) -> np.ndarray:
        """Copy of the underlying distance matrix (rows/cols ordered by ``qubits``)."""
        return self._matrix.copy()

    def diameter(self) -> float:
        """Longest shortest path in the coupling graph."""
        finite = self._matrix[np.isfinite(self._matrix)]
        return float(finite.max()) if finite.size else 0.0
