"""Qubit mapping and SWAP routing.

The paper measures performance as the *total post-mapping gate count*
obtained by running a state-of-the-art qubit mapping algorithm (their
reference [18], the SABRE algorithm of Li et al., ASPLOS 2019) on each
candidate architecture.  This package reimplements that substrate from
scratch:

* :mod:`repro.mapping.distance` — all-pairs shortest path distances on the
  chip coupling graph;
* :mod:`repro.mapping.initial` — profile-aware initial logical-to-physical
  placement;
* :mod:`repro.mapping.sabre` — the look-ahead SWAP search with incremental
  candidate scoring, bidirectional passes, and seeded restarts;
* :mod:`repro.mapping.engine` — the routing engine: per-architecture
  router reuse plus deterministic memoization of routing results;
* :mod:`repro.mapping.router` — the public entry point returning the gate
  counts used throughout the evaluation.
"""

from repro.mapping.distance import DistanceMatrix
from repro.mapping.engine import RoutingCache, RoutingEngine
from repro.mapping.initial import initial_mapping
from repro.mapping.router import MappingResult, route_circuit, verify_routing
from repro.mapping.sabre import SabreRouter, SabreParameters

__all__ = [
    "DistanceMatrix",
    "initial_mapping",
    "MappingResult",
    "route_circuit",
    "verify_routing",
    "RoutingCache",
    "RoutingEngine",
    "SabreRouter",
    "SabreParameters",
]
